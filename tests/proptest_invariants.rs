//! Property-based tests (proptest) on the core invariants: clustering
//! well-formedness under arbitrary primitive sequences, resize bounds,
//! merge conservation, engine determinism and metrics consistency,
//! address-obliviousness and fan-in accounting of the round engine, and
//! the lower-bound graph machinery.

use optimal_gossip::core::primitives::{
    activate, collect_members, dissolve, flatten_round, grow_push_round, merge_iteration, resize,
    sample_singletons, size_round, unclustered_pull_round, MergeOpts, MergeRule, Who,
};
use optimal_gossip::core::verify::check_clustering;
use optimal_gossip::prelude::*;
use proptest::prelude::*;

/// A primitive operation chosen by proptest.
#[derive(Clone, Debug)]
enum Op {
    Grow,
    Activate(u8),
    Dissolve(u8),
    Resize(u8),
    MergeSmallest,
    MergeRandom,
    Flatten,
    PullJoin,
    Size,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Grow),
        (1u8..=100).prop_map(Op::Activate),
        (2u8..=32).prop_map(Op::Dissolve),
        (2u8..=32).prop_map(Op::Resize),
        Just(Op::MergeSmallest),
        Just(Op::MergeRandom),
        Just(Op::Flatten),
        Just(Op::PullJoin),
        Just(Op::Size),
    ]
}

fn apply(sim: &mut ClusterSim, op: &Op) {
    match op {
        Op::Grow => {
            grow_push_round(sim, Who::AllClustered);
        }
        Op::Activate(p) => activate(sim, f64::from(*p) / 100.0),
        Op::Dissolve(s) => dissolve(sim, u64::from(*s), Who::AllClustered),
        Op::Resize(s) => resize(sim, u64::from(*s), Who::AllClustered),
        Op::MergeSmallest => {
            merge_iteration(
                sim,
                MergeOpts {
                    pushers: Who::AllClustered,
                    inactive_merge_only: false,
                    rule: MergeRule::Smallest,
                    smaller_only: true,
                    mark_merged_active: false,
                },
            );
            flatten_round(sim);
        }
        Op::MergeRandom => {
            merge_iteration(
                sim,
                MergeOpts {
                    pushers: Who::ActiveOnly,
                    inactive_merge_only: true,
                    rule: MergeRule::Random,
                    smaller_only: false,
                    mark_merged_active: true,
                },
            );
            flatten_round(sim);
        }
        Op::Flatten => flatten_round(sim),
        Op::PullJoin => {
            unclustered_pull_round(sim);
        }
        Op::Size => {
            collect_members(sim, Who::AllClustered);
            size_round(sim, Who::AllClustered, None);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Any sequence of primitives leaves the clustering well-formed:
    /// every clustered node points at an alive leader that follows itself.
    #[test]
    fn primitives_preserve_wellformedness(
        seed in 0u64..1000,
        p in 1u32..40,
        ops in prop::collection::vec(op_strategy(), 1..12),
    ) {
        let mut common = CommonConfig::default();
        common.seed = seed;
        let mut sim = ClusterSim::new(256, &common);
        sample_singletons(&mut sim, f64::from(p) / 100.0);
        for op in &ops {
            apply(&mut sim, op);
        }
        // Merges can leave one-hop chains until flattened; flatten twice
        // (more than the deepest chain a single op sequence can build
        // between flattens) and then demand perfection.
        for _ in 0..4 {
            flatten_round(&mut sim);
        }
        prop_assert!(check_clustering(&sim).is_ok());
    }

    /// Resize always leaves cluster sizes below 2s and never loses nodes.
    #[test]
    fn resize_bounds_hold(seed in 0u64..1000, s in 2u64..32, grows in 1u32..7) {
        let mut common = CommonConfig::default();
        common.seed = seed;
        let mut sim = ClusterSim::new(512, &common);
        sample_singletons(&mut sim, 0.02);
        for _ in 0..grows {
            grow_push_round(&mut sim, Who::AllClustered);
        }
        let before = sim.clustered_count();
        resize(&mut sim, s, Who::AllClustered);
        let stats = sim.clustering_stats();
        prop_assert_eq!(stats.clustered, before, "no node lost");
        prop_assert!((stats.max_size as u64) < 2 * s, "max {} vs 2s {}", stats.max_size, 2 * s);
        prop_assert!(check_clustering(&sim).is_ok());
    }

    /// Merging never changes the number of clustered nodes.
    #[test]
    fn merge_conserves_membership(seed in 0u64..1000, p_act in 10u32..90) {
        let mut common = CommonConfig::default();
        common.seed = seed;
        let mut sim = ClusterSim::new(256, &common);
        sample_singletons(&mut sim, 1.0);
        activate(&mut sim, f64::from(p_act) / 100.0);
        let before = sim.clustered_count();
        merge_iteration(
            &mut sim,
            MergeOpts {
                pushers: Who::ActiveOnly,
                inactive_merge_only: true,
                rule: MergeRule::Random,
                smaller_only: false,
                mark_merged_active: true,
            },
        );
        for _ in 0..3 {
            flatten_round(&mut sim);
        }
        prop_assert_eq!(sim.clustered_count(), before);
        prop_assert!(check_clustering(&sim).is_ok());
    }

    /// Engine determinism: identical seeds yield identical metrics for
    /// any (n, rounds) choice.
    #[test]
    fn engine_is_deterministic(seed in 0u64..5000, n in 8usize..256, rounds in 1u32..6) {
        let run = |seed| {
            let mut common = CommonConfig::default();
            common.seed = seed;
            let mut sim = ClusterSim::new(n, &common);
            sample_singletons(&mut sim, 0.2);
            for _ in 0..rounds {
                grow_push_round(&mut sim, Who::AllClustered);
            }
            (sim.net.metrics().clone(), sim.clustered_count())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Metrics consistency: message counts decompose exactly into pushes,
    /// pull requests and pull replies; payload messages never exceed the
    /// total.
    #[test]
    fn metrics_decompose(seed in 0u64..1000, n in 16usize..256) {
        let mut common = CommonConfig::default();
        common.seed = seed;
        let mut cfg = Cluster2Config::default();
        cfg.common = common;
        let mut sim = ClusterSim::new(n.max(32), &cfg.common);
        let _ = cluster2::run_on(&mut sim, &cfg);
        let m = sim.net.metrics();
        prop_assert_eq!(m.messages, m.pushes + m.pull_requests + m.pull_replies);
        prop_assert_eq!(m.payload_messages, m.pushes + m.pull_replies);
        prop_assert!(m.pull_replies <= m.pull_requests);
        let round_sum: u64 = m.per_round.iter().map(|r| r.messages).sum();
        prop_assert_eq!(round_sum, m.messages);
    }

    /// Lower-bound machinery: certified diameter bounds always contain
    /// the exact diameter, and the budget decision matches it.
    #[test]
    fn diameter_bounds_are_certified(seed in 0u64..1000, n in 16usize..200, t in 1u32..5) {
        use optimal_gossip::lowerbound::diameter::{bounds, diameter_at_most, exact};
        use optimal_gossip::lowerbound::graph::sample_union_graph;
        let g = sample_union_graph(n, t, seed);
        match exact(&g) {
            None => {
                prop_assert!(bounds(&g, 3).is_none());
                prop_assert!(!diameter_at_most(&g, u64::MAX / 2));
            }
            Some(d) => {
                let b = bounds(&g, 3).expect("connected");
                prop_assert!(b.lo <= d && d <= b.hi, "[{}, {}] vs {}", b.lo, b.hi, d);
                for budget in [1u64, 2, 4, 8, 16] {
                    prop_assert_eq!(diameter_at_most(&g, budget), u64::from(d) <= budget);
                }
            }
        }
    }

    /// Address-obliviousness (the paper's structural model restriction,
    /// enforced by the `decide`/`respond` split): permuting the node wire
    /// IDs never changes pull responses. Two networks whose nodes hold
    /// identical algorithm states but whose wire IDs are drawn from
    /// different seeds must answer a pull of the *same underlying node*
    /// with the *same payload*.
    #[test]
    fn pull_responses_are_address_oblivious(
        n in 2usize..128,
        seed_a in 0u64..1000,
        perm_shift in 1u64..1000,
        k in 1u32..128,
    ) {
        use phonecall::{Action, Delivery, Target};

        let k = u64::from(k) % n as u64;
        let seed_b = seed_a + perm_shift; // a different ID permutation
        let pull_target = |net_seed: u64| -> Option<u64> {
            // State: the node's dense index (the "algorithm state" the
            // response may legitimately depend on) plus the puller's inbox.
            #[derive(Clone)]
            struct St { val: u64, got: Option<u64> }
            let mut net: Network<St> =
                Network::with_state_fn(n, net_seed, |idx, _id| St { val: u64::from(idx.0), got: None });
            let target_id = net.id_of(NodeIdx(k as u32));
            net.round(
                |ctx, _rng| {
                    if ctx.idx.0 == 0 {
                        Action::<u64>::Pull { to: Target::Direct(target_id) }
                    } else {
                        Action::Idle
                    }
                },
                |s| Some(s.val),
                |s, d| {
                    if let Delivery::PullReply { msg, .. } = d {
                        s.got = Some(msg);
                    }
                },
            );
            net.states()[0].got
        };
        let a = pull_target(seed_a);
        let b = pull_target(seed_b);
        prop_assert_eq!(a, b, "response depended on the wire-ID permutation");
        if k == 0 {
            // Self-pull: node 0 pulls itself; the reply is its own value.
            prop_assert_eq!(a, Some(0));
        } else {
            prop_assert_eq!(a, Some(k), "pull must return the target's state");
        }
    }

    /// Fan-in accounting: within one round, the per-node fan-in counters
    /// sum to the initiations plus the communications that arrived at a
    /// target (push deliveries and pull requests) — nothing is double- or
    /// under-charged.
    #[test]
    fn fan_in_sums_to_deliveries(n in 2usize..200, seed in 0u64..1000, mix in 0u32..3) {
        use phonecall::{Action, Delivery, Target};

        #[derive(Clone, Default)]
        struct St { pushes: u64, pulled_by: u64 }
        let mut net: Network<St> = Network::new(n, seed);
        let stats = net.round(
            |ctx, _rng| {
                // A seeded mix of pushes, pulls and idles (the `mix`
                // parameter shifts the blend across cases).
                match (phonecall::derive_seed(seed, u64::from(ctx.idx.0)) as u32 + mix) % 3 {
                    0 => Action::Push { to: Target::Random, msg: 7u64 },
                    1 => Action::<u64>::Pull { to: Target::Random },
                    _ => Action::Idle,
                }
            },
            |_s| Some(1u64),
            |s, d| match d {
                Delivery::Push { .. } => s.pushes += 1,
                Delivery::PulledBy(_) => s.pulled_by += 1,
                Delivery::PullReply { .. } => {}
            },
        );
        let fan_sum: u64 = net.last_fan_in().iter().map(|&c| u64::from(c)).sum();
        let deliveries: u64 = net
            .states()
            .iter()
            .map(|s| s.pushes + s.pulled_by)
            .sum();
        // All nodes alive, no loss: every resolved communication lands.
        prop_assert_eq!(fan_sum, stats.initiators + deliveries);
        // Cross-check against the round's message accounting: fan-in
        // charges initiations + pushes + pull requests, never replies.
        let m = net.metrics();
        prop_assert_eq!(fan_sum, stats.initiators + m.pushes + m.pull_requests);
        prop_assert_eq!(u64::from(net.last_fan_in().iter().copied().max().unwrap_or(0)), stats.max_fan_in);
    }

    /// Topology generators: every family builds a *connected* graph at
    /// any (n, seed) — disconnected draws are regenerated internally
    /// with a derived seed — with its family's degree bounds intact and
    /// a symmetric edge relation.
    #[test]
    fn generated_topologies_are_connected_with_degree_bounds(
        seed in 0u64..1000,
        n in 8usize..200,
        pick in 0u32..6,
    ) {
        use optimal_gossip::prelude::Topology;
        let p = (3.0 * (n as f64).ln() / n as f64).min(1.0);
        let topo = match pick {
            0 => Topology::Ring,
            1 => Topology::Torus2D,
            2 => Topology::RandomRegular(4),
            3 => Topology::ErdosRenyi(p),
            4 => Topology::WattsStrogatz(4, 0.3),
            _ => Topology::PreferentialAttachment(3),
        };
        let adj = topo.build(n, seed).expect("non-complete topologies materialize");
        prop_assert_eq!(adj.len(), n);
        prop_assert!(adj.is_connected(), "{} disconnected at n={n} seed={seed}", topo.name());
        for v in 0..n as u32 {
            let deg = adj.degree(v);
            prop_assert!(deg >= 1 && deg < n, "{}: degree {deg} at node {v}", topo.name());
            match topo {
                Topology::Ring => prop_assert!(deg <= 2),
                Topology::Torus2D => prop_assert!(deg <= 4),
                Topology::RandomRegular(d) => prop_assert_eq!(deg, d as usize),
                _ => {}
            }
            // Symmetry: every listed edge exists in both directions.
            for &u in adj.neighbors(v) {
                prop_assert!(adj.contains_edge(u, v), "asymmetric edge {u}-{v}");
                prop_assert!(u != v, "self loop at {v}");
            }
        }
    }

    /// With a topology installed, every communication of a Random-target
    /// workload travels along a graph edge — the engine never samples a
    /// non-neighbor — and the run is deterministic per seed.
    #[test]
    fn random_sampling_is_confined_to_edges(
        seed in 0u64..1000,
        n in 8usize..128,
        rounds in 1u32..6,
    ) {
        use optimal_gossip::prelude::{DirectAddressing, Topology};
        use phonecall::{Action, Target};
        let run = |seed: u64| {
            let mut net: Network<u64> = Network::new(n, seed);
            net.set_topology(
                Topology::WattsStrogatz(4, 0.2),
                DirectAddressing::Restricted,
                phonecall::derive_seed(seed, 5),
            );
            net.enable_trace(4 * n * rounds as usize);
            for _ in 0..rounds {
                net.round(
                    |ctx, _rng| {
                        if ctx.idx.0 % 2 == 0 {
                            Action::Push { to: Target::Random, msg: 1u64 }
                        } else {
                            Action::<u64>::Pull { to: Target::Random }
                        }
                    },
                    |s| Some(*s),
                    |s, _d| *s += 1,
                );
            }
            let edges: Vec<(u32, u32)> = net
                .trace()
                .events()
                .iter()
                .map(|e| (e.from.0, e.to.0))
                .collect();
            let adj = net.topology_adjacency().expect("installed").clone();
            (edges, adj, net.metrics().clone())
        };
        let (edges, adj, metrics) = run(seed);
        prop_assert!(!edges.is_empty());
        for (from, to) in &edges {
            prop_assert!(adj.contains_edge(*from, *to), "{from}->{to} is not an edge");
        }
        let (edges2, _, metrics2) = run(seed);
        prop_assert_eq!(edges, edges2, "topology runs must be deterministic");
        prop_assert_eq!(metrics, metrics2);
    }

    /// Failure plans: random plans have exactly the requested size and
    /// stay within range; applying them reduces alive counts accordingly.
    #[test]
    fn failure_plans_are_exact(n in 4usize..300, frac in 0u32..90, seed in 0u64..1000) {
        let f = n * frac as usize / 100;
        let plan = FailurePlan::random(n, f, seed);
        prop_assert_eq!(plan.len(), f);
        let mut common = CommonConfig::default();
        common.seed = seed;
        common.failures = plan;
        if n >= 2 {
            let sim = ClusterSim::new(n, &common);
            prop_assert_eq!(sim.alive_count(), n - f);
        }
    }
}
