//! Smoke test for the `examples/`: build and run every example at a small
//! `n` so they cannot silently rot. Each example accepts an optional size
//! argument precisely for this test.

use std::process::Command;

/// Runs one example through `cargo run --example` at n = 256.
fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let out = Command::new(cargo)
        .args(["run", "--quiet", "--example", name, "--", "256"])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        !out.stdout.is_empty(),
        "example {name} printed nothing — did it really run?"
    );
}

// One #[test] per example so failures name the culprit and the runner can
// parallelize; the first to run pays the shared `cargo build` cost.

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn algorithm_shootout_runs() {
    run_example("algorithm_shootout");
}

#[test]
fn membership_broadcast_runs() {
    run_example("membership_broadcast");
}

#[test]
fn fault_tolerant_broadcast_runs() {
    run_example("fault_tolerant_broadcast");
}

#[test]
fn bounded_fanout_runs() {
    run_example("bounded_fanout");
}

#[test]
fn coordination_tasks_runs() {
    run_example("coordination_tasks");
}
