//! End-to-end integration: every broadcast algorithm, across sizes and
//! seeds, on the shared simulator.

use optimal_gossip::prelude::*;

/// Runs every algorithm at one size/seed and returns (name, report).
fn run_all(n: usize, seed: u64) -> Vec<(&'static str, RunReport)> {
    let mut common = CommonConfig::default();
    common.seed = seed;
    let mut c1 = Cluster1Config::default();
    c1.common = common.clone();
    let mut c2 = Cluster2Config::default();
    c2.common = common.clone();
    vec![
        ("cluster1", cluster1::run(n, &c1)),
        ("cluster2", cluster2::run(n, &c2)),
        ("avin_elsasser", avin_elsasser::run(n, &common)),
        ("karp", karp::run(n, &common)),
        ("push", push::run(n, &common)),
        ("pull", pull::run(n, &common)),
        ("push_pull", push_pull::run(n, &common)),
    ]
}

#[test]
fn all_algorithms_inform_everyone_across_sizes_and_seeds() {
    for n in [256usize, 1024, 4096] {
        for seed in [1u64, 2, 3] {
            for (name, r) in run_all(n, seed) {
                assert!(
                    r.success,
                    "{name} failed at n={n} seed={seed}: {}/{} informed",
                    r.informed, r.alive
                );
                assert_eq!(r.n, n);
                assert_eq!(r.alive, n);
            }
        }
    }
}

#[test]
fn reports_are_internally_consistent() {
    for (name, r) in run_all(1024, 9) {
        assert!(r.informed <= r.alive, "{name}");
        assert!(r.payload_messages <= r.messages, "{name}");
        assert!(r.bits >= r.messages, "{name}: every message has a header");
        assert!(r.rounds > 0, "{name}");
        let phase_rounds: u64 = r.phases.iter().map(|p| p.rounds).sum();
        if !r.phases.is_empty() {
            assert_eq!(phase_rounds, r.rounds, "{name}: phases partition the run");
            let phase_msgs: u64 = r.phases.iter().map(|p| p.messages).sum();
            assert_eq!(phase_msgs, r.messages, "{name}: phase messages sum");
        }
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = run_all(512, 77);
    let b = run_all(512, 77);
    for ((name, ra), (_, rb)) in a.iter().zip(&b) {
        assert_eq!(ra, rb, "{name} must be deterministic");
    }
    let c = run_all(512, 78);
    let any_diff = a.iter().zip(&c).any(|((_, ra), (_, rc))| ra != rc);
    assert!(any_diff, "different seeds should give different runs");
}

#[test]
fn cluster_push_pull_end_to_end() {
    for delta in [16usize, 64, 256] {
        let mut cfg = PushPullConfig::default();
        cfg.common.seed = 5;
        let r = cluster_push_pull::run(2048, delta, &cfg);
        assert!(r.success, "delta={delta}: {}/{}", r.informed, r.alive);
        assert!(
            r.max_fan_in <= delta as u64,
            "delta={delta}: fan-in {}",
            r.max_fan_in
        );
    }
}

#[test]
fn delta_clustering_is_well_formed_across_grid() {
    use optimal_gossip::core::verify::check_delta_clustering;
    for n in [512usize, 2048] {
        for delta in [16usize, 64] {
            let mut cfg = Cluster3Config::default();
            cfg.common.seed = 11;
            cfg.c2.common.seed = 11;
            let (sim, rep) = cluster3::build(n, delta, &cfg);
            assert!(rep.complete, "n={n} delta={delta}");
            assert!(rep.max_fan_in <= delta as u64, "n={n} delta={delta}");
            check_delta_clustering(&sim, 1, delta)
                .unwrap_or_else(|e| panic!("n={n} delta={delta}: {e}"));
        }
    }
}

#[test]
fn name_dropper_discovers_complete_graph() {
    let common = CommonConfig::default();
    for topo in [
        name_dropper::Topology::Ring,
        name_dropper::Topology::SparseRandom,
    ] {
        let r = name_dropper::run(192, topo, &common);
        assert!(
            r.complete,
            "{topo:?} did not complete in {} rounds",
            r.rounds
        );
    }
}
