//! Golden-report regression tests: a compact digest of [`RunReport`]
//! (rounds, messages, bits, informed count) is pinned for every algorithm
//! in the registry at fixed `(n, seed)` grid points.
//!
//! All randomness flows from the run seed, so these digests are exact —
//! an engine or algorithm refactor that silently changes behavior (an
//! extra RNG draw, a reordered delivery, a different accounting charge)
//! fails loudly here rather than surfacing as a subtly shifted
//! experiment table months later.
//!
//! The grid iterates `registry::all()`, so a newly registered algorithm
//! fails the length check until its digests are pinned — no hand-kept
//! algorithm list to forget to extend.
//!
//! To regenerate after an *intentional* behavior change, run
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_reports -- --nocapture
//! ```
//!
//! and paste the printed rows over the `GOLDEN` table below (the churn,
//! topology, traffic and dataset tests print their rows under
//! `// churn grid:` / `// topology grid:` / `// traffic grid:` /
//! `// dataset grid:` headers for their respective tables). Do this
//! only when the change is meant to alter traffic patterns; the whole
//! point of the table is to make that decision explicit.

use optimal_gossip::prelude::*;

/// One pinned grid point: (algorithm, n, seed, rounds, messages, bits,
/// informed).
type Golden = (&'static str, usize, u64, u64, u64, u64, usize);

/// The pinned digests at the grid `n ∈ {64, 256, 1024} × seed ∈ {1, 7}`
/// for every registered algorithm: the seven headline-comparison digests
/// generated from the seed engine (PR 2, byte-identical through the
/// `Algorithm` trait), then the `Δ`-parameterized algorithms (at their
/// auto `Δ = max(16, ⌈√n⌉)`) and Name-Dropper, pinned when the registry
/// was introduced. For the non-broadcast tasks `informed` follows the
/// registry's report semantics: clustered nodes for `Cluster3`, nodes
/// with complete knowledge for `NameDropper`.
#[rustfmt::skip]
const GOLDEN: &[Golden] = &[
    // (algo, n, seed, rounds, messages, bits, informed)
    ("Cluster2", 64, 1, 75, 2380, 94659, 64),
    ("Cluster2", 64, 7, 75, 1994, 81427, 64),
    ("Cluster2", 256, 1, 75, 7172, 373439, 256),
    ("Cluster2", 256, 7, 75, 7291, 380157, 256),
    ("Cluster2", 1024, 1, 96, 27944, 1765062, 1024),
    ("Cluster2", 1024, 7, 96, 27166, 1727236, 1024),
    ("Cluster1", 64, 1, 49, 2892, 113734, 64),
    ("Cluster1", 64, 7, 49, 3029, 118818, 64),
    ("Cluster1", 256, 1, 49, 11740, 587735, 256),
    ("Cluster1", 256, 7, 49, 11169, 560303, 256),
    ("Cluster1", 1024, 1, 61, 59151, 3599080, 1024),
    ("Cluster1", 1024, 7, 61, 58140, 3605204, 1024),
    ("AvinElsasser", 64, 1, 44, 1101, 168101, 64),
    ("AvinElsasser", 64, 7, 44, 1102, 170011, 64),
    ("AvinElsasser", 256, 1, 52, 4948, 808193, 256),
    ("AvinElsasser", 256, 7, 52, 4911, 817647, 256),
    ("AvinElsasser", 1024, 1, 46, 19025, 3071051, 1024),
    ("AvinElsasser", 1024, 7, 46, 18825, 3075447, 1024),
    ("Karp", 64, 1, 22, 552, 97632, 64),
    ("Karp", 64, 7, 22, 560, 99840, 64),
    ("Karp", 256, 1, 26, 2721, 503808, 256),
    ("Karp", 256, 7, 26, 2721, 479904, 256),
    ("Karp", 1024, 1, 29, 11940, 1833792, 1024),
    ("Karp", 1024, 7, 29, 11973, 1919784, 1024),
    ("PushPull", 64, 1, 7, 488, 77664, 64),
    ("PushPull", 64, 7, 6, 432, 59904, 64),
    ("PushPull", 256, 1, 8, 2209, 339968, 256),
    ("PushPull", 256, 7, 8, 2209, 316064, 256),
    ("PushPull", 1024, 1, 10, 10916, 1497920, 1024),
    ("PushPull", 1024, 7, 10, 10949, 1583912, 1024),
    ("Push", 64, 1, 10, 254, 79248, 64),
    ("Push", 64, 7, 11, 323, 100776, 64),
    ("Push", 256, 1, 13, 1251, 400320, 256),
    ("Push", 256, 7, 13, 1282, 410240, 256),
    ("Push", 1024, 1, 17, 7227, 2370456, 1024),
    ("Push", 1024, 7, 19, 9085, 2979880, 1024),
    ("Pull", 64, 1, 9, 467, 29352, 64),
    ("Pull", 64, 7, 10, 526, 30768, 64),
    ("Pull", 256, 1, 12, 2374, 149408, 256),
    ("Pull", 256, 7, 11, 2186, 143392, 256),
    ("Pull", 1024, 1, 16, 14074, 857584, 1024),
    ("Pull", 1024, 7, 14, 12030, 775824, 1024),
    ("Cluster3", 64, 1, 108, 3338, 127024, 64),
    ("Cluster3", 64, 7, 108, 3336, 128045, 64),
    ("Cluster3", 256, 1, 108, 12978, 653690, 256),
    ("Cluster3", 256, 7, 108, 12755, 643926, 256),
    ("Cluster3", 1024, 1, 119, 69014, 4318355, 1024),
    ("Cluster3", 1024, 7, 119, 68031, 4266283, 1024),
    ("ClusterPushPull", 64, 1, 148, 4002, 277104, 64),
    ("ClusterPushPull", 64, 7, 148, 4010, 277597, 64),
    ("ClusterPushPull", 256, 1, 156, 16222, 1350394, 256),
    ("ClusterPushPull", 256, 7, 156, 15970, 1341238, 256),
    ("ClusterPushPull", 1024, 1, 163, 82737, 7431627, 1024),
    ("ClusterPushPull", 1024, 7, 163, 81684, 7402099, 1024),
    ("Tree", 64, 1, 2, 126, 21168, 64),
    ("Tree", 64, 7, 2, 126, 21168, 64),
    ("Tree", 256, 1, 2, 510, 89760, 256),
    ("Tree", 256, 7, 2, 510, 89760, 256),
    ("Tree", 1024, 1, 2, 2046, 376464, 1024),
    ("Tree", 1024, 7, 2, 2046, 376464, 1024),
    ("NameDropper", 64, 1, 20, 1280, 555200, 64),
    ("NameDropper", 64, 7, 18, 1152, 445764, 64),
    ("NameDropper", 256, 1, 26, 6656, 10949984, 256),
    ("NameDropper", 256, 7, 25, 6400, 9813824, 256),
    ("NameDropper", 1024, 1, 31, 31744, 205633104, 1024),
    ("NameDropper", 1024, 7, 34, 34816, 264123936, 1024),
];

/// The canonical churn scenario of the golden grid: an early correlated
/// outage with recovery plus burst loss, source protected — every axis of
/// the dynamic adversary active at once. Digests under this scenario pin
/// the adversary's event stream *and* the engine's loss composition; any
/// change to either fails loudly here.
fn canonical_churn() -> phonecall::ChurnConfig {
    phonecall::ChurnConfig {
        crash_rate: 0.5,
        batch_size: 4,
        recovery_rate: 0.2,
        burst_enter: 0.15,
        burst_exit: 0.35,
        burst_loss: 0.5,
        start_round: 1,
        stop_round: Some(24),
        protected: vec![0],
        ..phonecall::ChurnConfig::default()
    }
}

/// Pinned digests for every registered algorithm under the canonical
/// churn scenario at `n = 256, seed ∈ {1, 7}`. Unlike the loss-free grid
/// these runs are *not* required to succeed (churn is allowed to strand
/// survivors); the digests pin whatever behavior the adversary produces.
///
/// Re-pinned when sent-but-lost pull replies started being charged to
/// `messages`/`bits` (the sender pays for a reply the network drops):
/// only those two columns moved — every `rounds`/`informed` entry is
/// unchanged because delivery outcomes and the RNG stream were not
/// touched, which is exactly the invariant the re-pin was checked
/// against.
#[rustfmt::skip]
const CHURN_GOLDEN: &[Golden] = &[
    // (algo, n, seed, rounds, messages, bits, informed)
    ("Cluster2", 256, 1, 75, 10188, 505878, 256),
    ("Cluster2", 256, 7, 75, 7533, 389262, 256),
    ("Cluster1", 256, 1, 49, 10634, 531290, 256),
    ("Cluster1", 256, 7, 49, 8469, 433032, 256),
    ("AvinElsasser", 256, 1, 52, 4991, 753513, 256),
    ("AvinElsasser", 256, 7, 52, 4933, 783689, 256),
    ("Karp", 256, 1, 26, 2656, 496832, 249),
    ("Karp", 256, 7, 26, 2705, 433888, 250),
    ("PushPull", 256, 1, 7, 1917, 262656, 246),
    ("PushPull", 256, 7, 9, 2452, 353216, 255),
    ("Push", 256, 1, 14, 1350, 432000, 247),
    ("Push", 256, 7, 14, 1313, 420160, 247),
    ("Pull", 256, 1, 13, 2279, 153280, 249),
    ("Pull", 256, 7, 15, 3066, 170976, 249),
    ("Cluster3", 256, 1, 108, 14372, 709586, 256),
    ("Cluster3", 256, 7, 108, 13146, 663119, 256),
    ("ClusterPushPull", 256, 1, 156, 17554, 1407634, 256),
    ("ClusterPushPull", 256, 7, 156, 16368, 1363471, 256),
    ("Tree", 256, 1, 2, 502, 88352, 252),
    ("Tree", 256, 7, 4, 365, 43360, 66),
    ("NameDropper", 256, 1, 31, 7700, 11128368, 255),
    ("NameDropper", 256, 7, 31, 7750, 13054688, 253),
];

/// The canonical topology grid: one sparse extreme and one expander
/// under restricted addressing, the same expander plus a small world
/// under overlay — the four corners of E11's sweep — at `n = 256`,
/// seed 1. As with churn, the runs are *not* required to succeed
/// (restricted sparse graphs defeat the clustered algorithms by
/// design); the digests pin the neighbor-sampling stream, the
/// restricted-edge gating and the per-scenario graph build exactly.
fn topology_grid_points() -> Vec<(&'static str, Topology, DirectAddressing)> {
    vec![
        (
            "ring/restricted",
            Topology::Ring,
            DirectAddressing::Restricted,
        ),
        (
            "rr8/restricted",
            Topology::RandomRegular(8),
            DirectAddressing::Restricted,
        ),
        (
            "rr8/overlay",
            Topology::RandomRegular(8),
            DirectAddressing::Overlay,
        ),
        (
            "ws6/overlay",
            Topology::WattsStrogatz(6, 0.2),
            DirectAddressing::Overlay,
        ),
    ]
}

/// One pinned topology grid point: (algorithm, scenario, rounds,
/// messages, bits, informed) at `n = 256`, seed 1.
type TopoGolden = (&'static str, &'static str, u64, u64, u64, usize);

/// Pinned digests for every registered algorithm at every point of
/// [`topology_grid_points`].
#[rustfmt::skip]
const TOPOLOGY_GOLDEN: &[TopoGolden] = &[
    // (algo, topology/addressing, rounds, messages, bits, informed)
    ("Cluster2", "ring/restricted", 75, 4471, 203562, 1),
    ("Cluster2", "rr8/restricted", 75, 4924, 231666, 1),
    ("Cluster2", "rr8/overlay", 75, 8105, 416078, 256),
    ("Cluster2", "ws6/overlay", 75, 8111, 419020, 256),
    ("Cluster1", "ring/restricted", 49, 2713, 102076, 3),
    ("Cluster1", "rr8/restricted", 49, 2386, 112939, 1),
    ("Cluster1", "rr8/overlay", 49, 11409, 572079, 256),
    ("Cluster1", "ws6/overlay", 49, 9641, 489288, 256),
    ("AvinElsasser", "ring/restricted", 52, 3849, 153278, 21),
    ("AvinElsasser", "rr8/restricted", 52, 3261, 348920, 256),
    ("AvinElsasser", "rr8/overlay", 52, 4913, 803960, 256),
    ("AvinElsasser", "ws6/overlay", 52, 4777, 769455, 256),
    ("Karp", "ring/restricted", 26, 6271, 236672, 35),
    ("Karp", "rr8/restricted", 26, 2736, 432288, 256),
    ("Karp", "rr8/overlay", 26, 2736, 432288, 256),
    ("Karp", "ws6/overlay", 26, 2741, 337408, 256),
    ("PushPull", "ring/restricted", 104, 26742, 3238944, 159),
    ("PushPull", "rr8/restricted", 9, 2480, 350368, 256),
    ("PushPull", "rr8/overlay", 9, 2480, 350368, 256),
    ("PushPull", "ws6/overlay", 11, 2985, 415488, 256),
    ("Push", "ring/restricted", 104, 6072, 1943040, 122),
    ("Push", "rr8/restricted", 14, 1374, 439680, 256),
    ("Push", "rr8/overlay", 14, 1374, 439680, 256),
    ("Push", "ws6/overlay", 22, 2296, 734720, 256),
    ("Pull", "ring/restricted", 104, 21388, 714944, 107),
    ("Pull", "rr8/restricted", 12, 2303, 147136, 256),
    ("Pull", "rr8/overlay", 12, 2303, 147136, 256),
    ("Pull", "ws6/overlay", 20, 3379, 181568, 256),
    ("Cluster3", "ring/restricted", 108, 5128, 239689, 237),
    ("Cluster3", "rr8/restricted", 108, 6603, 322424, 256),
    ("Cluster3", "rr8/overlay", 108, 12781, 644070, 256),
    ("Cluster3", "ws6/overlay", 108, 12833, 646565, 256),
    ("ClusterPushPull", "ring/restricted", 156, 8298, 364169, 27),
    ("ClusterPushPull", "rr8/restricted", 156, 8560, 635416, 256),
    ("ClusterPushPull", "rr8/overlay", 156, 16004, 1321926, 256),
    ("ClusterPushPull", "ws6/overlay", 156, 16186, 1294533, 256),
    ("Tree", "ring/restricted", 4, 2, 352, 2),
    ("Tree", "rr8/restricted", 4, 8, 544, 2),
    ("Tree", "rr8/overlay", 2, 510, 89760, 256),
    ("Tree", "ws6/overlay", 2, 510, 89760, 256),
    ("NameDropper", "ring/restricted", 296, 9392, 3161504, 0),
    ("NameDropper", "rr8/restricted", 296, 2650, 296112, 0),
    ("NameDropper", "rr8/overlay", 26, 6656, 10949984, 256),
    ("NameDropper", "ws6/overlay", 26, 6656, 10949984, 256),
];

/// One pinned traffic grid point: (algorithm, seed, rounds, messages,
/// bits, workload rumors completed, piggybacked payloads) at `n = 256`
/// under the canonical E13 workload.
type TrafficGolden = (&'static str, u64, u64, u64, u64, usize, u64);

/// Pinned digests for every registered algorithm under the canonical
/// multi-rumor workload (eight rumors arriving at one per round,
/// unlimited bandwidth) at `n = 256, seed ∈ {1, 7}`. The workload rides
/// the algorithms' own messages, so `rounds` matches the loss-free grid
/// while `bits` grows by the piggybacked payloads; `completed` pins the
/// workload semantics (a bounded-schedule algorithm may finish before
/// late arrivals spread) and `payloads` the transfer stream itself.
#[rustfmt::skip]
const TRAFFIC_GOLDEN: &[TrafficGolden] = &[
    // (algo, seed, rounds, messages, bits, completed, payloads)
    ("Cluster2", 1, 75, 7172, 895679, 8, 2040),
    ("Cluster2", 7, 75, 7291, 902397, 8, 2040),
    ("Cluster1", 1, 49, 11740, 1109975, 8, 2040),
    ("Cluster1", 7, 49, 11169, 1082543, 8, 2040),
    ("AvinElsasser", 1, 52, 4948, 942593, 0, 525),
    ("AvinElsasser", 7, 52, 4911, 1096175, 0, 1088),
    ("Karp", 1, 26, 2721, 606720, 0, 402),
    ("Karp", 7, 26, 2721, 608928, 0, 504),
    ("PushPull", 1, 8, 2209, 357376, 0, 68),
    ("PushPull", 7, 8, 2209, 339872, 0, 93),
    ("Push", 1, 13, 1251, 565440, 0, 645),
    ("Push", 7, 13, 1282, 668288, 0, 1008),
    ("Pull", 1, 12, 2374, 155552, 0, 24),
    ("Pull", 7, 11, 2186, 145184, 0, 7),
    ("Cluster3", 1, 108, 12978, 1062778, 4, 1598),
    ("Cluster3", 7, 108, 12755, 1053526, 5, 1600),
    ("ClusterPushPull", 1, 156, 16222, 1816826, 6, 1822),
    ("ClusterPushPull", 7, 156, 15970, 1805878, 7, 1815),
    ("Tree", 1, 2, 510, 89760, 0, 0),
    ("Tree", 7, 2, 510, 93856, 0, 16),
    ("NameDropper", 1, 26, 6656, 11472224, 8, 2040),
    ("NameDropper", 7, 25, 6400, 10336064, 8, 2040),
];

/// Pinned digests for every registered algorithm on the `ws_1k` loaded
/// snapshot (a file-loaded `Topology::FromFile`, exercising the whole
/// dataset pipeline: text parse or binary cache → relabeled CSR →
/// simulate) under both addressing modes at seed 1. The scenario name
/// column records the addressing mode. As with the synthetic topology
/// grid, restricted runs are *not* required to succeed; the digests pin
/// the loaded graph — and with it the parser, the id relabeling, and
/// the cache round-trip — bit-exactly.
#[rustfmt::skip]
const DATASET_GOLDEN: &[TopoGolden] = &[
    // (algo, fixture/addressing, rounds, messages, bits, informed)
    ("Cluster2", "ws_1k/overlay", 96, 31560, 1992103, 1024),
    ("Cluster2", "ws_1k/restricted", 96, 15652, 922993, 1),
    ("Cluster1", "ws_1k/overlay", 61, 43021, 2626450, 1019),
    ("Cluster1", "ws_1k/restricted", 61, 10187, 581086, 7),
    ("AvinElsasser", "ws_1k/overlay", 46, 19354, 2705819, 1024),
    ("AvinElsasser", "ws_1k/restricted", 46, 13847, 1041603, 695),
    ("Karp", "ws_1k/overlay", 29, 15763, 1055896, 1024),
    ("Karp", "ws_1k/restricted", 29, 15763, 1055896, 1024),
    ("PushPull", "ws_1k/overlay", 20, 21166, 3144592, 1024),
    ("PushPull", "ws_1k/restricted", 20, 21166, 3144592, 1024),
    ("Push", "ws_1k/overlay", 32, 12580, 4126240, 1024),
    ("Push", "ws_1k/restricted", 32, 12580, 4126240, 1024),
    ("Pull", "ws_1k/overlay", 32, 21251, 1144664, 1024),
    ("Pull", "ws_1k/restricted", 32, 21251, 1144664, 1024),
    ("Cluster3", "ws_1k/overlay", 119, 63664, 3997761, 1024),
    ("Cluster3", "ws_1k/restricted", 119, 13000, 790903, 1024),
    ("ClusterPushPull", "ws_1k/overlay", 163, 78391, 6908761, 1024),
    ("ClusterPushPull", "ws_1k/restricted", 163, 23526, 1605159, 777),
    ("Tree", "ws_1k/overlay", 2, 2046, 376464, 1024),
    ("Tree", "ws_1k/restricted", 4, 10, 688, 2),
    ("NameDropper", "ws_1k/overlay", 31, 31744, 205633104, 1024),
    ("NameDropper", "ws_1k/restricted", 440, 121813, 16579308, 0),
];

/// The committed `ws_1k` fixture, resolved from the package root so the
/// test passes regardless of the runner's working directory.
fn ws_1k_path() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/ws_1k.txt").to_string()
}

fn dataset_grid() -> Vec<(&'static dyn Algorithm, &'static str, DirectAddressing)> {
    let mut g = Vec::new();
    for &algo in registry::all() {
        for (name, mode) in [
            ("ws_1k/overlay", DirectAddressing::Overlay),
            ("ws_1k/restricted", DirectAddressing::Restricted),
        ] {
            g.push((algo, name, mode));
        }
    }
    g
}

fn dataset_digest(
    algo: &dyn Algorithm,
    scenario_name: &'static str,
    mode: DirectAddressing,
) -> TopoGolden {
    let r = algo.run(
        &Scenario::broadcast(1024)
            .seed(1)
            .topology(Topology::FromFile(ws_1k_path()))
            .addressing(mode),
    );
    (
        algo.name(),
        scenario_name,
        r.rounds,
        r.messages,
        r.bits,
        r.informed,
    )
}

#[test]
fn dataset_run_reports_match_golden_digests() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        println!("// dataset grid:");
        for (algo, name, mode) in dataset_grid() {
            let (algo, name, rounds, messages, bits, informed) = dataset_digest(algo, name, mode);
            println!("    (\"{algo}\", \"{name}\", {rounds}, {messages}, {bits}, {informed}),");
        }
        return;
    }
    assert_eq!(
        DATASET_GOLDEN.len(),
        dataset_grid().len(),
        "dataset golden table out of sync with the registry grid; regenerate with GOLDEN_REGEN=1"
    );
    for (&(name, scenario, rounds, messages, bits, informed), (algo, gname, mode)) in
        DATASET_GOLDEN.iter().zip(dataset_grid())
    {
        assert_eq!((name, scenario), (algo.name(), gname), "grid drift");
        let got = dataset_digest(algo, gname, mode);
        assert_eq!(
            got,
            (name, scenario, rounds, messages, bits, informed),
            "{name} at {scenario} drifted from its dataset golden digest"
        );
    }
}

fn traffic_grid() -> Vec<(&'static dyn Algorithm, u64)> {
    let mut g = Vec::new();
    for &algo in registry::all() {
        for seed in [1u64, 7] {
            g.push((algo, seed));
        }
    }
    g
}

fn traffic_digest(algo: &dyn Algorithm, seed: u64) -> TrafficGolden {
    let r = algo.run(&Scenario::broadcast(256).seed(seed).rumors(8, 1.0));
    (
        algo.name(),
        seed,
        r.rounds,
        r.messages,
        r.bits,
        r.rumors_completed(),
        r.rumor_payloads,
    )
}

#[test]
fn traffic_run_reports_match_golden_digests() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        println!("// traffic grid:");
        for (algo, seed) in traffic_grid() {
            let (name, seed, rounds, messages, bits, completed, payloads) =
                traffic_digest(algo, seed);
            println!(
                "    (\"{name}\", {seed}, {rounds}, {messages}, {bits}, {completed}, {payloads}),"
            );
        }
        return;
    }
    assert_eq!(
        TRAFFIC_GOLDEN.len(),
        traffic_grid().len(),
        "traffic golden table out of sync with the registry grid; regenerate with GOLDEN_REGEN=1"
    );
    for (&(name, seed, rounds, messages, bits, completed, payloads), (algo, gseed)) in
        TRAFFIC_GOLDEN.iter().zip(traffic_grid())
    {
        assert_eq!((name, seed), (algo.name(), gseed), "grid drift");
        let got = traffic_digest(algo, seed);
        assert_eq!(
            got,
            (name, seed, rounds, messages, bits, completed, payloads),
            "{name} at seed {seed} drifted from its traffic golden digest"
        );
    }
}

/// One pinned async grid point: (algorithm, seed, rounds, events
/// processed, messages, bits, informed) at `n = 256` under the default
/// asynchronous engine (`rate = 1`, fixed latency `0.5`).
type AsyncGolden = (&'static str, u64, u64, u64, u64, u64, usize);

/// Pinned digests for every registered algorithm under
/// `Engine::Async(AsyncConfig::default())` at `n = 256, seed ∈ {1, 7}`.
/// Alongside the usual cost digest these pin `events_processed` — the
/// length of the timestamp-ordered event trace — so any change to the
/// event ordering, the clock/latency/delivery streams or the drain
/// schedule fails loudly even when the aggregate costs happen to agree.
#[rustfmt::skip]
const ASYNC_GOLDEN: &[AsyncGolden] = &[
    // (algo, seed, rounds, events, messages, bits, informed)
    ("Cluster2", 1, 75, 27430, 8230, 420317, 256),
    ("Cluster2", 7, 75, 26023, 6823, 358588, 256),
    ("Cluster1", 1, 49, 24282, 11738, 587639, 256),
    ("Cluster1", 7, 49, 23710, 11166, 560159, 256),
    ("AvinElsasser", 1, 52, 18256, 4944, 811731, 256),
    ("AvinElsasser", 7, 52, 18246, 4934, 815055, 256),
    ("Karp", 1, 26, 9388, 2732, 553984, 256),
    ("Karp", 7, 26, 9381, 2725, 588896, 256),
    ("PushPull", 1, 7, 3756, 1964, 308224, 256),
    ("PushPull", 7, 6, 3237, 1701, 261216, 256),
    ("Push", 1, 12, 4466, 1394, 446080, 256),
    ("Push", 7, 11, 4083, 1267, 405440, 256),
    ("Pull", 1, 11, 4957, 2141, 141952, 256),
    ("Pull", 7, 10, 4668, 2108, 140896, 256),
    ("Cluster3", 1, 108, 40615, 12967, 652818, 256),
    ("Cluster3", 7, 108, 40665, 13017, 656583, 256),
    ("ClusterPushPull", 1, 156, 56163, 16227, 1335186, 256),
    ("ClusterPushPull", 7, 156, 56186, 16250, 1348839, 256),
    ("Tree", 1, 2, 1022, 510, 89760, 256),
    ("Tree", 7, 2, 1022, 510, 89760, 256),
    ("NameDropper", 1, 22, 11264, 5632, 9352528, 256),
    ("NameDropper", 7, 25, 12800, 6400, 12447680, 256),
];

fn async_grid() -> Vec<(&'static dyn Algorithm, u64)> {
    let mut g = Vec::new();
    for &algo in registry::all() {
        for seed in [1u64, 7] {
            g.push((algo, seed));
        }
    }
    g
}

fn async_digest(algo: &dyn Algorithm, seed: u64) -> AsyncGolden {
    let r = algo.run(
        &Scenario::broadcast(256)
            .seed(seed)
            .engine(Engine::Async(AsyncConfig::default())),
    );
    (
        algo.name(),
        seed,
        r.rounds,
        r.events_processed,
        r.messages,
        r.bits,
        r.informed,
    )
}

#[test]
fn async_run_reports_match_golden_digests() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        println!("// async grid:");
        for (algo, seed) in async_grid() {
            let (name, seed, rounds, events, messages, bits, informed) = async_digest(algo, seed);
            println!(
                "    (\"{name}\", {seed}, {rounds}, {events}, {messages}, {bits}, {informed}),"
            );
        }
        return;
    }
    assert_eq!(
        ASYNC_GOLDEN.len(),
        async_grid().len(),
        "async golden table out of sync with the registry grid; regenerate with GOLDEN_REGEN=1"
    );
    for (&(name, seed, rounds, events, messages, bits, informed), (algo, gseed)) in
        ASYNC_GOLDEN.iter().zip(async_grid())
    {
        assert_eq!((name, seed), (algo.name(), gseed), "grid drift");
        let got = async_digest(algo, seed);
        assert_eq!(
            got,
            (name, seed, rounds, events, messages, bits, informed),
            "{name} at seed {seed} drifted from its async golden digest"
        );
    }
}

fn topology_grid() -> Vec<(
    &'static dyn Algorithm,
    &'static str,
    Topology,
    DirectAddressing,
)> {
    let mut g = Vec::new();
    for &algo in registry::all() {
        for (name, topo, mode) in topology_grid_points() {
            g.push((algo, name, topo, mode));
        }
    }
    g
}

fn topology_digest(
    algo: &dyn Algorithm,
    scenario_name: &'static str,
    topo: Topology,
    mode: DirectAddressing,
) -> TopoGolden {
    let r = algo.run(
        &Scenario::broadcast(256)
            .seed(1)
            .topology(topo)
            .addressing(mode),
    );
    (
        algo.name(),
        scenario_name,
        r.rounds,
        r.messages,
        r.bits,
        r.informed,
    )
}

#[test]
fn topology_run_reports_match_golden_digests() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        println!("// topology grid:");
        for (algo, name, topo, mode) in topology_grid() {
            let (algo, name, rounds, messages, bits, informed) =
                topology_digest(algo, name, topo, mode);
            println!("    (\"{algo}\", \"{name}\", {rounds}, {messages}, {bits}, {informed}),");
        }
        return;
    }
    assert_eq!(
        TOPOLOGY_GOLDEN.len(),
        topology_grid().len(),
        "topology golden table out of sync with the registry grid; regenerate with GOLDEN_REGEN=1"
    );
    for (&(name, scenario, rounds, messages, bits, informed), (algo, gname, topo, mode)) in
        TOPOLOGY_GOLDEN.iter().zip(topology_grid())
    {
        assert_eq!((name, scenario), (algo.name(), gname), "grid drift");
        let got = topology_digest(algo, gname, topo, mode);
        assert_eq!(
            got,
            (name, scenario, rounds, messages, bits, informed),
            "{name} at {scenario} drifted from its topology golden digest"
        );
    }
}

fn churn_grid() -> Vec<(&'static dyn Algorithm, usize, u64)> {
    let mut g = Vec::new();
    for &algo in registry::all() {
        for seed in [1u64, 7] {
            g.push((algo, 256, seed));
        }
    }
    g
}

fn churn_digest(algo: &dyn Algorithm, n: usize, seed: u64) -> Golden {
    let r = algo.run(&Scenario::broadcast(n).seed(seed).churn(canonical_churn()));
    (
        algo.name(),
        n,
        seed,
        r.rounds,
        r.messages,
        r.bits,
        r.informed,
    )
}

#[test]
fn churn_run_reports_match_golden_digests() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        println!("// churn grid:");
        for (algo, n, seed) in churn_grid() {
            let (name, n, seed, rounds, messages, bits, informed) = churn_digest(algo, n, seed);
            println!("    (\"{name}\", {n}, {seed}, {rounds}, {messages}, {bits}, {informed}),");
        }
        return;
    }
    assert_eq!(
        CHURN_GOLDEN.len(),
        churn_grid().len(),
        "churn golden table out of sync with the registry grid; regenerate with GOLDEN_REGEN=1"
    );
    for (&(name, n, seed, rounds, messages, bits, informed), (algo, gn, gseed)) in
        CHURN_GOLDEN.iter().zip(churn_grid())
    {
        assert_eq!((name, n, seed), (algo.name(), gn, gseed), "grid drift");
        let got = churn_digest(algo, n, seed);
        assert_eq!(
            got,
            (name, n, seed, rounds, messages, bits, informed),
            "{name} at (n={n}, seed={seed}) drifted from its churn golden digest"
        );
    }
}

fn grid() -> Vec<(&'static dyn Algorithm, usize, u64)> {
    let mut g = Vec::new();
    for &algo in registry::all() {
        for n in [64usize, 256, 1024] {
            for seed in [1u64, 7] {
                g.push((algo, n, seed));
            }
        }
    }
    g
}

fn digest(algo: &dyn Algorithm, n: usize, seed: u64) -> Golden {
    let r = algo.run(&Scenario::broadcast(n).seed(seed));
    (
        algo.name(),
        n,
        seed,
        r.rounds,
        r.messages,
        r.bits,
        r.informed,
    )
}

#[test]
fn run_reports_match_golden_digests() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        for (algo, n, seed) in grid() {
            let (name, n, seed, rounds, messages, bits, informed) = digest(algo, n, seed);
            println!("    (\"{name}\", {n}, {seed}, {rounds}, {messages}, {bits}, {informed}),");
        }
        return;
    }
    assert_eq!(
        GOLDEN.len(),
        grid().len(),
        "golden table out of sync with the registry grid; regenerate with GOLDEN_REGEN=1"
    );
    for (&(name, n, seed, rounds, messages, bits, informed), (algo, gn, gseed)) in
        GOLDEN.iter().zip(grid())
    {
        assert_eq!((name, n, seed), (algo.name(), gn, gseed), "grid drift");
        let got = digest(algo, n, seed);
        assert_eq!(
            got,
            (name, n, seed, rounds, messages, bits, informed),
            "{name} at (n={n}, seed={seed}) drifted from its golden digest"
        );
    }
}

#[test]
fn golden_runs_all_succeed() {
    // The digests above must describe *successful* runs (broadcast
    // complete, clustering complete, discovery closed); a pinned failure
    // would silently weaken every other experiment.
    for (algo, n, seed) in grid() {
        let r = algo.run(&Scenario::broadcast(n).seed(seed));
        assert!(
            r.success,
            "{} failed at (n={n}, seed={seed}): {}/{}",
            algo.name(),
            r.informed,
            r.alive
        );
    }
}
