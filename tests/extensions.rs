//! Integration tests for the extension features: success testing,
//! guess-test-and-double, the cluster task library, multi-source
//! broadcast, the oracle tree reference and the Lemma 14 dynamics.

use optimal_gossip::core::tasks::{
    aggregate, build_spanning_cluster, count_alive, elected_leader, Combine,
};
use optimal_gossip::core::{broadcast_success_test, run_unknown_n};
use optimal_gossip::lowerbound::knowledge::rounds_to_complete;
use optimal_gossip::prelude::*;

#[test]
fn success_test_agrees_with_ground_truth_after_real_runs() {
    for seed in [1u64, 2, 3] {
        let mut cfg = Cluster2Config::default();
        cfg.common.seed = seed;
        let mut sim = ClusterSim::new(1024, &cfg.common);
        let report = cluster2::run_on(&mut sim, &cfg);
        let test = optimal_gossip::core::estimate::broadcast_success_test(&mut sim);
        assert_eq!(
            test.verdict,
            report.informed == report.alive,
            "seed {seed}: test verdict must match ground truth"
        );
    }
}

#[test]
fn unknown_n_broadcast_succeeds_with_bounded_overhead() {
    let cfg = Cluster2Config::default();
    let n = 1 << 11;
    let unknown = run_unknown_n(n, &cfg);
    assert!(unknown.final_run.success);
    // Constant-factor overhead over the known-n run (guesses square, so
    // only O(log log n) attempts happen; assert a generous 6x).
    let known = cluster2::run(n, &cfg);
    assert!(
        unknown.total_rounds <= 6 * known.rounds,
        "unknown-n used {} rounds vs known-n {}",
        unknown.total_rounds,
        known.rounds
    );
}

#[test]
fn task_library_over_real_spanning_cluster() {
    let mut cfg = Cluster2Config::default();
    cfg.common.seed = 4;
    let (mut sim, report) = build_spanning_cluster(1 << 10, &cfg);
    assert!(report.success);
    // Leader election is free.
    let leader = elected_leader(&sim).expect("one spanning cluster");
    // Counting costs 2 rounds.
    assert_eq!(count_alive(&mut sim), 1 << 10);
    // Aggregation: the sum of node indices.
    let values: Vec<u64> = (0..1u64 << 10).collect();
    let expect: u64 = values.iter().sum();
    assert_eq!(aggregate(&mut sim, &values, Combine::Sum), expect);
    assert_eq!(aggregate(&mut sim, &values, Combine::Max), (1 << 10) - 1);
    // The elected leader did not change along the way.
    assert_eq!(elected_leader(&sim), Some(leader));
}

#[test]
fn multi_source_broadcast_works_everywhere() {
    let mut common = CommonConfig::default();
    common.seed = 5;
    common.source = 0;
    common.extra_sources = vec![100, 200, 300];
    let mut c2 = Cluster2Config::default();
    c2.common = common.clone();
    let r = cluster2::run(1 << 10, &c2);
    assert!(r.success);
    let r = push::run(1 << 10, &common);
    assert!(r.success);
    // Multiple sources can only speed things up.
    let mut single = CommonConfig::default();
    single.seed = 5;
    let r_single = push::run(1 << 10, &single);
    assert!(r.rounds <= r_single.rounds + 2);
}

#[test]
fn oracle_tree_matches_lemma16_exactly() {
    use optimal_gossip::baselines::tree;
    for delta in [2usize, 8, 32] {
        let r = tree::run(1 << 10, delta, &CommonConfig::default());
        assert!(r.success);
        assert_eq!(r.rounds, tree::predicted_rounds(1 << 10, delta));
        assert!(r.max_fan_in <= delta as u64);
        // Lemma 16: rounds >= log n / log delta.
        let bound = (10.0 / (delta as f64).log2()).floor() as u64;
        assert!(r.rounds >= bound, "rounds {} vs bound {bound}", r.rounds);
    }
}

#[test]
fn cluster_push_pull_stays_above_oracle_tree() {
    // The clustering algorithm can never beat the free-addresses optimum
    // at the same delta.
    use optimal_gossip::baselines::tree;
    let n = 1 << 12;
    for delta in [16usize, 256] {
        let mut cfg = PushPullConfig::default();
        cfg.common.seed = 6;
        let real = cluster_push_pull::run(n, delta, &cfg);
        let oracle = tree::run(n, delta, &CommonConfig::default());
        assert!(real.success && oracle.success);
        assert!(real.rounds >= oracle.rounds);
    }
}

#[test]
fn lemma14_dynamics_bracket_the_lower_bound() {
    // The omnipotent algorithm completes in loglog n + O(1) — i.e. the
    // lower bound of Theorem 3 is tight.
    let n = 1 << 11;
    let rounds = rounds_to_complete(n, 1, 20).expect("completes");
    let loglog = (n as f64).log2().log2();
    assert!(
        (f64::from(rounds) - loglog).abs() <= 3.0,
        "omnipotent completion {rounds} vs loglog {loglog:.1}"
    );
    // And no budget below the Theorem 3 threshold can ever suffice.
    assert_eq!(estimate_success(n, 1, 5, 0), 0.0);
}

#[test]
fn success_test_has_no_false_positives_with_many_holdouts() {
    // Run the test on engineered near-misses across seeds: with 16+
    // uninformed nodes out of 512, a false "success" verdict would need
    // ~496 probes to all miss — probability (31/32)^496 ≈ 1.5e-7.
    use optimal_gossip::core::Follow;
    for seed in 0..10u64 {
        let mut common = CommonConfig::default();
        common.seed = seed;
        let mut sim = ClusterSim::new(512, &common);
        let leader = sim.net.id_of(NodeIdx(0));
        for i in 0..512 {
            let s = &mut sim.net.states_mut()[i];
            s.follow = Follow::Of(leader);
            s.informed = !(1..=16).contains(&i);
        }
        let t = broadcast_success_test(&mut sim);
        assert!(!t.verdict, "seed {seed}: 16 holdouts must be detected");
    }
}
