//! Workspace-level detlint smoke: the committed stream-label registry
//! matches a fresh extraction, the whole tree lints clean, and the
//! linter's hardcoded algorithm list tracks the real registry.
//!
//! This is the `cargo test` face of the CI `detlint` job — a stream
//! change, a stray `HashMap` in a simulation crate, or an unjustified
//! suppression fails the ordinary test run too, not just CI.

use gossip_baselines::registry;
use gossip_lint::{collect_workspace, lint_files, registry::render, Rule, REGISTRY_FILE};

fn workspace_root() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lints_clean() {
    let files = collect_workspace(workspace_root());
    assert!(
        files.len() > 100,
        "scanned only {} files — the walker lost a subtree",
        files.len()
    );
    let committed = std::fs::read_to_string(workspace_root().join(REGISTRY_FILE)).ok();
    let report = lint_files(&files, committed.as_deref());
    let errors: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule.name(), f.message))
        .collect();
    assert!(
        errors.is_empty(),
        "detlint found {} unsuppressed hazards:\n{}",
        errors.len(),
        errors.join("\n")
    );
}

#[test]
fn committed_registry_matches_fresh_extraction() {
    let files = collect_workspace(workspace_root());
    let report = lint_files(&files, None);
    assert!(
        !report.streams.is_empty(),
        "no derive_seed call sites extracted — the stream scanner is broken"
    );
    let fresh = render(&report.streams);
    let committed = std::fs::read_to_string(workspace_root().join(REGISTRY_FILE))
        .expect("STREAM_LABELS.tsv is committed at the workspace root");
    assert_eq!(
        committed, fresh,
        "STREAM_LABELS.tsv drifted from the source; regenerate with \
         `cargo run -p gossip-lint --release -- --update-registry`"
    );
    // And the engine's reserved labels really are claimed in the
    // registry: the wiring in sim.rs owns streams 3..=6.
    for label in ["\tseed\t3\t", "\tseed\t4\t", "\tseed\t5\t", "\tseed\t6\t"] {
        assert!(
            committed.contains(label),
            "reserved stream {label:?} missing"
        );
    }
}

#[test]
fn lint_algorithm_list_tracks_the_real_registry() {
    let real: std::collections::BTreeSet<&str> = registry::all().iter().map(|a| a.name()).collect();
    let lint: std::collections::BTreeSet<&str> =
        gossip_lint::goldens::ALGORITHMS.iter().copied().collect();
    assert_eq!(
        real, lint,
        "gossip_lint::goldens::ALGORITHMS is out of sync with registry::all(); \
         teach the linter the new name so golden coverage stays enforced"
    );
}

#[test]
fn suppressions_stay_justified() {
    // Belt and braces over the BadSuppression rule: every detlint
    // directive in the tree parses and carries a justification, and the
    // unsuppressible rules are never named in one.
    let files = collect_workspace(workspace_root());
    let committed = std::fs::read_to_string(workspace_root().join(REGISTRY_FILE)).ok();
    let report = lint_files(&files, committed.as_deref());
    for f in report.suppressed() {
        let why = f.suppressed.as_deref().unwrap_or_default();
        assert!(
            why.len() >= 20,
            "{}:{}: suppression justification too thin: {why:?}",
            f.path,
            f.line
        );
        assert!(
            matches!(
                f.rule,
                Rule::HashOrder
                    | Rule::WallClock
                    | Rule::AmbientRng
                    | Rule::EnvRead
                    | Rule::UnsafeCode
                    | Rule::ForbidUnsafe
                    | Rule::StreamLabel
                    | Rule::StreamCollision
            ),
            "{}:{}: rule {:?} should never appear suppressed",
            f.path,
            f.line,
            f.rule
        );
    }
}
