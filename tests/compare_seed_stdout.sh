#!/usr/bin/env bash
# Byte-compare every experiment binary's default-grid stdout against a
# reference capture — the honest form of a golden re-pin.
#
# Usage:
#   tests/compare_seed_stdout.sh capture <ref-dir>   # record stdouts from this build
#   tests/compare_seed_stdout.sh compare <ref-dir>   # cmp this build against a capture
#
# Workflow for an engine refactor (how PR 6 used it): check out the
# pre-refactor tree, `capture` into a scratch dir, check out the
# refactored tree, `compare` against it. All fourteen experiment tables
# are exact functions of RNG draw order, so a refactor that claims to be
# behavior-preserving must produce byte-identical bytes here — and if it
# intends to change behavior, the diff this script prints is the
# evidence to cite next to the one-time golden re-pin. Experiment stdout
# is thread-count invariant by the determinism contract (CI pins
# GOSSIP_THREADS 1 and 4 over the digest suites), so captures taken at
# different GOSSIP_THREADS still compare equal.

set -euo pipefail

mode="${1:?usage: $0 capture|compare <ref-dir>}"
ref_dir="${2:?usage: $0 capture|compare <ref-dir>}"

bins=(
    exp_e1_rounds
    exp_e2_messages
    exp_e3_bits
    exp_e4_lowerbound
    exp_e5_delta_clustering
    exp_e6_tradeoff
    exp_e7_faults
    exp_e8_ablations
    exp_e9_message_loss
    exp_e10_churn
    exp_e11_topology
    exp_e12_realgraphs
    exp_e13_traffic
    exp_e14_async
)

cd "$(dirname "$0")/.."
cargo build --release -q -p gossip-bench

case "$mode" in
capture)
    mkdir -p "$ref_dir"
    for bin in "${bins[@]}"; do
        "./target/release/$bin" > "$ref_dir/$bin.txt"
        echo "captured $bin"
    done
    echo "reference stdouts written to $ref_dir"
    ;;
compare)
    fail=0
    for bin in "${bins[@]}"; do
        ref="$ref_dir/$bin.txt"
        if [[ ! -f "$ref" ]]; then
            echo "MISSING reference: $ref" >&2
            fail=1
            continue
        fi
        if "./target/release/$bin" | cmp -s - "$ref"; then
            echo "identical: $bin"
        else
            echo "DIVERGED:  $bin (vs $ref)" >&2
            fail=1
        fi
    done
    if [[ "$fail" -ne 0 ]]; then
        echo "stdout diverged from the reference capture — either the" >&2
        echo "refactor is not behavior-preserving, or a golden re-pin is" >&2
        echo "being made; cite this diff in the re-pin commit." >&2
        exit 1
    fi
    echo "all ${#bins[@]} experiment stdouts byte-identical to $ref_dir"
    ;;
*)
    echo "unknown mode: $mode (want capture|compare)" >&2
    exit 2
    ;;
esac
