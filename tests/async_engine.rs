//! Integration tests for the asynchronous event-driven engine mode:
//! every registered algorithm completes broadcast under `Engine::Async`
//! with **no algorithm-code changes**, same-seed runs replay the same
//! event trace bit-exactly, and the default `Engine::Sync` is inert —
//! scenarios that never mention an engine run bit-identical to builds
//! that predate the async subsystem.

use optimal_gossip::prelude::*;

fn async_scenario(n: usize, seed: u64) -> Scenario {
    Scenario::broadcast(n)
        .seed(seed)
        .engine(Engine::Async(AsyncConfig::default()))
}

/// The tentpole acceptance bar: all eleven registry algorithms run
/// unmodified through the `Algorithm` trait on the asynchronous engine
/// and complete their task — including the oracle `Tree`, whose
/// exact-round schedule only works because each schedule step drains
/// its whole event cascade before the next begins.
#[test]
fn every_algorithm_completes_under_async() {
    let scenario = async_scenario(256, 3);
    for algo in registry::all() {
        let r = algo.run(&scenario);
        assert!(
            r.success,
            "{} failed under the async engine: {}/{} informed",
            algo.name(),
            r.informed,
            r.alive
        );
        assert!(
            r.events_processed > 0 && r.virtual_time > 0.0,
            "{} reported no event activity — did the async engine run?",
            algo.name()
        );
    }
}

/// Under every latency profile, not just the default.
#[test]
fn every_latency_profile_completes() {
    for profile in ["fixed", "uniform", "exp"] {
        let cfg = Engine::profile(profile).expect("named profile");
        let scenario = Scenario::broadcast(128).seed(5).engine(Engine::Async(cfg));
        for algo in registry::all() {
            let r = algo.run(&scenario);
            assert!(r.success, "{} failed under async:{profile}", algo.name());
        }
    }
}

/// Same seed ⇒ same event trace: the full report (including the event
/// count and the continuous clock) replays bit-exactly.
#[test]
fn async_reports_are_bit_identical() {
    for algo in registry::all() {
        let a = algo.run(&async_scenario(256, 11));
        let b = algo.run(&async_scenario(256, 11));
        assert_eq!(a, b, "{} async run diverged across replays", algo.name());
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.virtual_time.to_bits(), b.virtual_time.to_bits());
    }
}

/// Different seeds genuinely reorder the timeline (the determinism
/// assertion above is not vacuous).
#[test]
fn async_reports_differ_across_seeds() {
    let cluster2 = registry::by_name("cluster2").unwrap();
    let a = cluster2.run(&async_scenario(256, 11));
    let b = cluster2.run(&async_scenario(256, 12));
    assert_ne!(
        (a.messages, a.virtual_time.to_bits()),
        (b.messages, b.virtual_time.to_bits()),
        "different seeds should not replay the same timeline"
    );
}

/// Sync-inertness: a scenario that spells out `Engine::Sync` runs
/// bit-identical to one that never mentions an engine at all — the
/// async machinery draws nothing unless installed. (The pinned golden
/// tables in `golden_reports.rs` extend this check back to the digests
/// generated before the async subsystem existed.)
#[test]
fn explicit_sync_engine_is_inert() {
    for algo in registry::all() {
        let default_run = algo.run(&Scenario::broadcast(256).seed(1));
        let explicit_run = algo.run(&Scenario::broadcast(256).seed(1).engine(Engine::Sync));
        assert_eq!(
            default_run,
            explicit_run,
            "{} changed behavior under explicit Engine::Sync",
            algo.name()
        );
        assert_eq!(default_run.events_processed, 0, "sync processes no events");
        assert!(
            default_run.virtual_time == 0.0,
            "sync has no continuous clock"
        );
    }
}

/// The async engine composes with the rest of the environment: loss,
/// churn, a restricted topology and the multi-rumor workload all ride
/// the event queue deterministically.
#[test]
fn async_composes_with_adversary_and_workload() {
    let churn = ChurnConfig {
        crash_rate: 0.5,
        batch_size: 4,
        recovery_rate: 0.2,
        burst_enter: 0.15,
        burst_exit: 0.35,
        burst_loss: 0.5,
        start_round: 1,
        stop_round: Some(24),
        protected: vec![0],
        ..ChurnConfig::default()
    };
    let scenario = Scenario::broadcast(256)
        .seed(7)
        .engine(Engine::Async(AsyncConfig::default()))
        .message_loss(0.05)
        .churn(churn)
        .topology(Topology::RandomRegular(8))
        .addressing(DirectAddressing::Restricted)
        .rumors(8, 1.0);
    for algo in registry::all() {
        let a = algo.run(&scenario);
        let b = algo.run(&scenario);
        assert_eq!(a, b, "{} diverged under the full environment", algo.name());
        assert!(a.events_processed > 0);
    }
}

/// The engine survives the scenario's JSON parameter round trip like
/// every other knob: `params -> render -> parse -> apply` reproduces
/// the run bit-exactly.
#[test]
fn engine_round_trips_through_json_params() {
    use optimal_gossip::core::config::{apply_engine_params, engine_params};

    for engine in [
        Engine::Sync,
        Engine::Async(AsyncConfig::default()),
        Engine::Async(Engine::profile("uniform").unwrap()),
        Engine::Async(Engine::profile("exp").unwrap()),
    ] {
        let doc = Value::parse(&engine_params(&engine).render()).unwrap();
        let mut back = Engine::Sync;
        apply_engine_params(&mut back, &doc).unwrap();
        assert_eq!(back, engine, "engine lost in the JSON round trip");
    }
}
