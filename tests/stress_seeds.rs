//! Multi-seed robustness: the paper's guarantees are whp statements, so
//! the implementations must succeed across many independent seeds, not
//! just the ones unit tests happen to use.

use optimal_gossip::prelude::*;

const SEEDS: u64 = 12;

#[test]
fn cluster1_succeeds_across_seeds() {
    for seed in 0..SEEDS {
        let mut cfg = Cluster1Config::default();
        cfg.common.seed = phonecall::derive_seed(0x51, seed);
        let r = cluster1::run(1024, &cfg);
        assert!(r.success, "seed {seed}: {}/{}", r.informed, r.alive);
    }
}

#[test]
fn cluster2_succeeds_across_seeds() {
    for seed in 0..SEEDS {
        let mut cfg = Cluster2Config::default();
        cfg.common.seed = phonecall::derive_seed(0x52, seed);
        let r = cluster2::run(1024, &cfg);
        assert!(r.success, "seed {seed}: {}/{}", r.informed, r.alive);
    }
}

#[test]
fn cluster2_succeeds_across_seeds_odd_sizes() {
    // Non-power-of-two and awkward sizes.
    for (i, n) in [337usize, 999, 1500, 3001].into_iter().enumerate() {
        let mut cfg = Cluster2Config::default();
        cfg.common.seed = phonecall::derive_seed(0x53, i as u64);
        let r = cluster2::run(n, &cfg);
        assert!(r.success, "n={n}: {}/{}", r.informed, r.alive);
    }
}

#[test]
fn cluster_push_pull_succeeds_across_seeds() {
    for seed in 0..SEEDS / 2 {
        let mut cfg = PushPullConfig::default();
        cfg.common.seed = phonecall::derive_seed(0x54, seed);
        let r = cluster_push_pull::run(1024, 32, &cfg);
        assert!(r.success, "seed {seed}: {}/{}", r.informed, r.alive);
        assert!(r.max_fan_in <= 32, "seed {seed}: fan-in {}", r.max_fan_in);
    }
}

#[test]
fn delta_clustering_bounds_hold_across_seeds() {
    for seed in 0..SEEDS / 2 {
        let mut cfg = Cluster3Config::default();
        cfg.common.seed = phonecall::derive_seed(0x55, seed);
        cfg.c2.common.seed = cfg.common.seed;
        let (_sim, rep) = cluster3::build(1024, 64, &cfg);
        assert!(rep.complete, "seed {seed}");
        assert!(
            rep.max_fan_in <= 64,
            "seed {seed}: fan-in {}",
            rep.max_fan_in
        );
    }
}

#[test]
fn baselines_succeed_across_seeds() {
    for seed in 0..SEEDS / 2 {
        let mut common = CommonConfig::default();
        common.seed = phonecall::derive_seed(0x56, seed);
        assert!(push::run(1024, &common).success, "push seed {seed}");
        assert!(pull::run(1024, &common).success, "pull seed {seed}");
        assert!(
            push_pull::run(1024, &common).success,
            "push_pull seed {seed}"
        );
        assert!(karp::run(1024, &common).success, "karp seed {seed}");
        assert!(avin_elsasser::run(1024, &common).success, "ae seed {seed}");
    }
}

#[test]
fn varying_sources_do_not_matter() {
    // Symmetry: the source's identity is irrelevant.
    for source in [0u32, 1, 500, 1023] {
        let mut cfg = Cluster2Config::default();
        cfg.common.seed = 0x57;
        cfg.common.source = source;
        let r = cluster2::run(1024, &cfg);
        assert!(r.success, "source {source}");
    }
}

#[test]
fn tiny_networks_work() {
    // The asymptotic machinery must degrade gracefully at toy sizes.
    for n in [2usize, 3, 4, 8, 16, 32] {
        let mut cfg = Cluster2Config::default();
        cfg.common.seed = 0x58;
        let r = cluster2::run(n, &cfg);
        assert!(r.success, "n={n}: {}/{}", r.informed, r.alive);
        let mut c1 = Cluster1Config::default();
        c1.common.seed = 0x58;
        let r = cluster1::run(n, &c1);
        assert!(r.success, "cluster1 n={n}: {}/{}", r.informed, r.alive);
    }
}
