//! Failure-injection integration tests: every algorithm against the
//! oblivious adversary of Section 8, plus structural checks that failures
//! can never corrupt a clustering.

use optimal_gossip::core::verify::check_clustering;
use optimal_gossip::prelude::*;

/// Builds a common config with `f` random failures, keeping the source
/// alive.
fn faulty_common(n: usize, f: usize, seed: u64) -> CommonConfig {
    let mut common = CommonConfig::default();
    common.seed = seed;
    common.failures = FailurePlan::random(n, f, phonecall::derive_seed(seed, 0xFA));
    if common
        .failures
        .failed()
        .iter()
        .any(|i| i.0 == common.source)
    {
        common.source = (0..n as u32)
            .find(|i| !common.failures.failed().iter().any(|x| x.0 == *i))
            .expect("not all nodes failed");
    }
    common
}

#[test]
fn every_algorithm_survives_failures() {
    let n = 1024;
    let f = 200;
    for seed in [1u64, 2] {
        let common = faulty_common(n, f, seed);
        let mut c1 = Cluster1Config::default();
        c1.common = common.clone();
        let mut c2 = Cluster2Config::default();
        c2.common = common.clone();
        let runs: Vec<(&str, RunReport)> = vec![
            ("cluster1", cluster1::run(n, &c1)),
            ("cluster2", cluster2::run(n, &c2)),
            ("avin_elsasser", avin_elsasser::run(n, &common)),
            ("karp", karp::run(n, &common)),
            ("push", push::run(n, &common)),
            ("pull", pull::run(n, &common)),
            ("push_pull", push_pull::run(n, &common)),
        ];
        for (name, r) in runs {
            assert_eq!(r.alive, n - f, "{name}");
            // o(F) guarantee, asserted loosely: at most 5% of F.
            assert!(
                r.uninformed() * 20 <= f,
                "{name} seed={seed}: {} uninformed of F={f}",
                r.uninformed()
            );
        }
    }
}

#[test]
fn no_survivor_ever_follows_a_dead_leader() {
    // Failures happen at time 0, before any clustering exists, so no
    // dead node can ever be recruited as a leader (leaders are sampled
    // among alive nodes and merge targets are alive leaders' IDs).
    let n = 2048;
    let common = faulty_common(n, 400, 3);
    let mut cfg = Cluster2Config::default();
    cfg.common = common;
    let mut sim = ClusterSim::new(n, &cfg.common);
    let _ = cluster2::run_on(&mut sim, &cfg);
    check_clustering(&sim).expect("no dangling/dead/non-leader pointers");
}

#[test]
fn delta_clustering_under_failures() {
    let n = 2048;
    let f = 300;
    let mut cfg = Cluster3Config::default();
    cfg.common = faulty_common(n, f, 4);
    cfg.c2.common = cfg.common.clone();
    let (sim, rep) = cluster3::build(n, 64, &cfg);
    assert!(rep.max_fan_in <= 64);
    check_clustering(&sim).expect("well-formed under failures");
    // All but o(F) survivors clustered.
    assert!(
        rep.clustering.unclustered * 20 <= f,
        "{} unclustered of F={f}",
        rep.clustering.unclustered
    );
}

#[test]
fn broadcast_over_clustering_under_failures() {
    let n = 2048;
    let mut cfg = PushPullConfig::default();
    cfg.common = faulty_common(n, 300, 5);
    let r = cluster_push_pull::run(n, 64, &cfg);
    assert!(r.max_fan_in <= 64);
    assert!(r.uninformed() * 20 <= 300, "{} uninformed", r.uninformed());
}

#[test]
fn extreme_failure_fraction_degrades_gracefully() {
    // Half the network dead: success on all survivors is no longer
    // guaranteed whp, but runs must terminate, stay well-formed, and
    // still inform the vast majority.
    let n = 1024;
    let common = faulty_common(n, n / 2, 6);
    let mut cfg = Cluster2Config::default();
    cfg.common = common;
    let r = cluster2::run(n, &cfg);
    assert_eq!(r.alive, n / 2);
    assert!(
        r.informed * 10 >= r.alive * 9,
        "at least 90% of survivors informed: {}/{}",
        r.informed,
        r.alive
    );
}

#[test]
fn randomized_baselines_self_heal_under_message_loss() {
    let mut common = CommonConfig::default();
    common.seed = 21;
    common.message_loss = 0.15;
    assert!(push::run(1024, &common).success, "push self-heals");
    assert!(
        push_pull::run(1024, &common).success,
        "push-pull self-heals"
    );
    assert!(karp::run(1024, &common).success, "karp self-heals");
}

#[test]
fn cluster2_absorbs_light_message_loss() {
    let mut cfg = Cluster2Config::default();
    cfg.common.seed = 22;
    cfg.common.message_loss = 0.01;
    let r = cluster2::run(1024, &cfg);
    assert!(
        r.informed as f64 >= 0.95 * r.alive as f64,
        "1% loss keeps coverage high: {}/{}",
        r.informed,
        r.alive
    );
}

#[test]
fn failures_do_not_change_round_budgets() {
    // The algorithms run fixed, locally computable schedules, so failures
    // must not change the round count (only message counts).
    let n = 1024;
    let mut healthy = Cluster2Config::default();
    healthy.common.seed = 7;
    let r_healthy = cluster2::run(n, &healthy);
    let mut faulty = Cluster2Config::default();
    faulty.common = faulty_common(n, 200, 7);
    let r_faulty = cluster2::run(n, &faulty);
    assert_eq!(r_healthy.rounds, r_faulty.rounds);
}
