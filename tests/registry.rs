//! Integration tests for the algorithm registry: the names are stable
//! API, every algorithm module is registered, every parameter document
//! survives a JSON round trip, and lookups fail helpfully.

use optimal_gossip::prelude::*;
use std::collections::BTreeSet;

/// The registry's names are unique and pinned — experiment CSVs, BENCH
/// records and the golden table all key on them.
#[test]
fn names_are_unique_and_stable() {
    let names: Vec<&str> = registry::all().iter().map(|a| a.name()).collect();
    let unique: BTreeSet<&str> = names.iter().copied().collect();
    assert_eq!(unique.len(), names.len(), "duplicate names: {names:?}");
    assert_eq!(
        names,
        [
            "Cluster2",
            "Cluster1",
            "AvinElsasser",
            "Karp",
            "PushPull",
            "Push",
            "Pull",
            "Cluster3",
            "ClusterPushPull",
            "Tree",
            "NameDropper",
        ],
        "registry names/order are stable API"
    );
}

/// Every algorithm module exported from `gossip_core`'s and
/// `gossip_baselines`'s `lib.rs` module lists has a registry entry, under
/// a name that normalizes to the module name.
#[test]
fn every_algorithm_module_is_registered() {
    // The algorithm modules of the two crates' `lib.rs` files (the
    // non-algorithm modules — config, report, primitives, common, … —
    // have no `run` entry point to register).
    let modules = [
        // gossip_core
        "cluster1",
        "cluster2",
        "cluster3",
        "cluster_push_pull",
        // gossip_baselines
        "avin_elsasser",
        "karp",
        "name_dropper",
        "pull",
        "push",
        "push_pull",
        "tree",
    ];
    assert_eq!(
        modules.len(),
        registry::all().len(),
        "module list and registry disagree on the algorithm count"
    );
    for module in modules {
        let algo = registry::by_name(module)
            .unwrap_or_else(|e| panic!("module {module} has no registry entry: {e}"));
        // by_name is separator-insensitive, so the module name itself is
        // a valid CLI spelling of the algorithm.
        assert!(!algo.about().is_empty(), "{module} has no description");
    }
}

/// Every algorithm's parameter document survives `render -> parse`, and
/// feeding the defaults back as overrides changes nothing about the run.
#[test]
fn every_config_round_trips_through_json() {
    let scenario = Scenario::broadcast(128).seed(3);
    for algo in registry::all() {
        let params = algo.default_params();
        let doc = params.render();
        let reparsed = Value::parse(&doc).unwrap_or_else(|e| {
            panic!(
                "{}: default params do not re-parse: {e}\n{doc}",
                algo.name()
            )
        });
        assert_eq!(
            reparsed,
            params,
            "{}: JSON round trip lost data",
            algo.name()
        );
        assert_eq!(
            algo.run_with_params(&scenario, &reparsed).unwrap(),
            algo.run(&scenario),
            "{}: defaults-as-overrides changed the run",
            algo.name()
        );
    }
}

/// Unknown names error out listing every valid name; unknown parameter
/// keys error out naming the valid keys.
#[test]
fn unknown_lookups_are_helpful() {
    let err = registry::by_name("raft").unwrap_err();
    let msg = err.to_string();
    for algo in registry::all() {
        assert!(msg.contains(algo.name()), "{msg:?} missing {}", algo.name());
    }

    let scenario = Scenario::broadcast(64).seed(1);
    for algo in registry::all() {
        let err = algo
            .run_with_params(&scenario, &Value::parse(r#"{"warp_factor": 9}"#).unwrap())
            .expect_err("unknown key must be rejected");
        assert!(
            err.to_string().contains("warp_factor"),
            "{}: error does not name the bad key: {err}",
            algo.name()
        );
        // A non-object override document (e.g. double-encoded JSON) must
        // error, not silently run with defaults.
        let err = algo
            .run_with_params(&scenario, &Value::Str(r#"{"delta": 4}"#.into()))
            .expect_err("non-object overrides must be rejected");
        assert!(
            err.to_string().contains("JSON object"),
            "{}: {err}",
            algo.name()
        );
    }
}

/// The harness entry point fans an algorithm's trials out over the
/// parallel runner with the same seed derivation the binaries use.
#[test]
fn run_algorithm_trials_is_deterministic_and_seed_ordered() {
    let algo = registry::by_name("push").unwrap();
    let scenario = Scenario::broadcast(256).seed(0xE1);
    let a = run_algorithm_trials(algo, &scenario, 5);
    let b = run_algorithm_trials(algo, &scenario, 5);
    assert_eq!(a, b, "same scenario, same reports");
    assert_eq!(a.len(), 5);
    assert!(a.iter().all(|r| r.success));
    // Trials are genuinely independently seeded, not clones.
    assert!(
        a.iter().any(|r| r.messages != a[0].messages),
        "all trials identical — seeds not varied?"
    );
}

/// The acceptance loop of the registry: every algorithm runs the default
/// broadcast scenario through the trait with a successful report.
#[test]
fn registry_runs_default_broadcast_scenario() {
    let scenario = Scenario::broadcast(512).seed(9);
    for algo in registry::all() {
        let r = algo.run(&scenario);
        assert!(
            r.success,
            "{} failed: {}/{}",
            algo.name(),
            r.informed,
            r.alive
        );
        assert_eq!(r.n, 512);
    }
}
