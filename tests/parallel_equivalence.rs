//! The parallel runner's determinism contract: `run_trials` (fan-out
//! across scoped worker threads) produces **bit-identical** `Summary`
//! values to `run_trials_seq` — for real experiment workloads, at every
//! thread count we care about (1, 2, 4 and 7, including counts that
//! don't divide the trial count evenly).
//!
//! Trials are independently seeded via `trial_seeds` and reassembled in
//! seed order, so this must hold exactly, not approximately; any
//! `assert_eq!` failure here means the parallel path reordered samples
//! or shared RNG state across trials.

use optimal_gossip::prelude::*;

use gossip_harness::{run_trials_on, run_trials_seq, Summary};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

#[test]
fn every_algorithm_label_is_thread_count_invariant() {
    // Mirrors the E1 workload: per-algorithm labels under one master
    // seed, the metric is the report's round count.
    let n = 256;
    let trials = 9; // deliberately not divisible by 2, 4, or 7
    for algo in registry::compared() {
        let seq = run_trials_seq(0xE1, algo.name(), trials, |seed| {
            algo.run(&Scenario::broadcast(n).seed(seed)).rounds as f64
        });
        for threads in THREAD_COUNTS {
            let par = run_trials_on(threads, 0xE1, algo.name(), trials, |seed| {
                algo.run(&Scenario::broadcast(n).seed(seed)).rounds as f64
            });
            assert_eq!(
                par,
                seq,
                "{} summary diverged at {threads} threads",
                algo.name()
            );
        }
    }
}

#[test]
fn float_sensitive_metrics_are_thread_count_invariant() {
    // Messages-per-node means exercise non-trivial floating point; a
    // reassembly-order bug would change the sum's rounding.
    let cluster2 = registry::by_name("Cluster2").unwrap();
    let seq = run_trials_seq(0xE2, "Cluster2", 11, |seed| {
        cluster2
            .run(&Scenario::broadcast(512).seed(seed))
            .messages_per_node()
    });
    assert!(seq.mean > 0.0);
    for threads in THREAD_COUNTS {
        let par = run_trials_on(threads, 0xE2, "Cluster2", 11, |seed| {
            cluster2
                .run(&Scenario::broadcast(512).seed(seed))
                .messages_per_node()
        });
        assert_eq!(par, seq, "diverged at {threads} threads");
    }
}

#[test]
fn loaded_scenarios_are_thread_count_invariant() {
    // The E13 shape: a multi-rumor workload multiplexed over churn and a
    // topology at once. The workload's completion count and piggyback
    // accounting must reassemble bit-identically at every thread count,
    // just like the single-rumor metrics.
    let churn = phonecall::ChurnConfig {
        crash_rate: 0.5,
        batch_size: 4,
        recovery_rate: 0.2,
        burst_enter: 0.15,
        burst_exit: 0.35,
        burst_loss: 0.5,
        start_round: 1,
        stop_round: Some(24),
        protected: vec![0],
        ..phonecall::ChurnConfig::default()
    };
    let scenario = Scenario::broadcast(256)
        .rumors(8, 1.0)
        .churn(churn)
        .topology(Topology::RandomRegular(8))
        .addressing(DirectAddressing::Overlay);
    for algo in [
        registry::by_name("ClusterPushPull").unwrap(),
        registry::by_name("PushPull").unwrap(),
    ] {
        let metric = |seed: u64| {
            let r = algo.run(&scenario.clone().seed(seed));
            r.rumors_completed() as f64 * 1e6 + r.rumor_payloads as f64 + r.throughput()
        };
        let seq = run_trials_seq(0xE13, algo.name(), 9, metric);
        assert!(seq.mean > 0.0, "{} carried no workload", algo.name());
        for threads in THREAD_COUNTS {
            let par = run_trials_on(threads, 0xE13, algo.name(), 9, metric);
            assert_eq!(
                par,
                seq,
                "{} loaded summary diverged at {threads} threads",
                algo.name()
            );
        }
    }
}

#[test]
fn async_scenarios_are_thread_count_invariant() {
    // The E14 shape: the asynchronous engine's clock/latency/delivery
    // streams are derived per trial seed, so the continuous virtual
    // clock and the event count must reassemble bit-identically at
    // every thread count — the whole event timeline is part of the
    // determinism contract, not just the aggregate costs.
    let scenario = Scenario::broadcast(256).engine(Engine::Async(AsyncConfig::default()));
    for algo in [
        registry::by_name("Cluster2").unwrap(),
        registry::by_name("PushPull").unwrap(),
    ] {
        let metric = |seed: u64| {
            let r = algo.run(&scenario.clone().seed(seed));
            r.virtual_time + r.events_processed as f64 * 1e6
        };
        let seq = run_trials_seq(0xE14, algo.name(), 9, metric);
        assert!(seq.mean > 0.0, "{} processed no events", algo.name());
        for threads in THREAD_COUNTS {
            let par = run_trials_on(threads, 0xE14, algo.name(), 9, metric);
            assert_eq!(
                par,
                seq,
                "{} async summary diverged at {threads} threads",
                algo.name()
            );
        }
    }
}

#[test]
fn gossip_threads_env_contract_is_documented_default() {
    // The runner must not *require* the env var: with nothing set it
    // falls back to available parallelism and still produces the
    // sequential summary.
    let seq = run_trials_seq(7, "env", 5, |seed| (seed % 97) as f64);
    let par = gossip_harness::run_trials(7, "env", 5, |seed| (seed % 97) as f64);
    assert_eq!(par, seq);
    assert!(gossip_harness::default_threads() >= 1);
}

#[test]
fn empty_and_single_trial_edges_match() {
    for trials in [0u32, 1] {
        let seq = run_trials_seq(3, "edge", trials, |seed| seed as f64);
        for threads in THREAD_COUNTS {
            assert_eq!(
                run_trials_on(threads, 3, "edge", trials, |seed| seed as f64),
                seq
            );
        }
    }
    assert_eq!(
        run_trials_seq(3, "edge", 0, |seed| seed as f64),
        Summary::default()
    );
}
