//! Integration contract of the topology subsystem
//! (`phonecall::topology`) across the whole stack: complete-graph
//! inertness (the constraint every pre-topology golden digest rests
//! on), scenario-level determinism and graph sharing, thread-count
//! invariance of the parallel runner with a topology active, the
//! churn × topology interaction (crashed nodes leave the neighbor
//! distribution, recoveries re-enter it), builder validation, and the
//! JSON round-trip of the topology environment.
//!
//! The `TOPOLOGY_GOLDEN` table of `tests/golden_reports.rs` pins exact
//! digests; this suite pins the *properties* those digests rely on.

use optimal_gossip::prelude::*;

use gossip_harness::{run_trials_on, run_trials_seq};
use phonecall::{Action, ChurnRound, Delivery, EventKind, Target};

/// The canonical sparse-but-mixing topology of this suite.
fn expander() -> Topology {
    Topology::RandomRegular(8)
}

#[test]
fn complete_topology_leaves_runs_bit_identical() {
    // Topology::Complete installs nothing: attaching it (under either
    // addressing mode) must not perturb a single digest — this is what
    // keeps every pre-topology golden row valid.
    let quiet = Scenario::broadcast(256).seed(7);
    for mode in [DirectAddressing::Overlay, DirectAddressing::Restricted] {
        let attached = Scenario::broadcast(256)
            .seed(7)
            .topology(Topology::Complete)
            .addressing(mode);
        for algo in registry::all() {
            assert_eq!(
                algo.run(&quiet),
                algo.run(&attached),
                "{} perturbed by the complete topology ({})",
                algo.name(),
                mode.label()
            );
        }
    }
}

#[test]
fn topology_actually_perturbs_runs() {
    // Guard against a silently ignored topology: a sparse graph must
    // change traffic relative to the complete scenario.
    let quiet = Scenario::broadcast(512).seed(11);
    let sparse = Scenario::broadcast(512).seed(11).topology(expander());
    let algo = registry::by_name("push-pull").unwrap();
    assert_ne!(
        algo.run(&quiet).rounds,
        algo.run(&sparse).rounds,
        "an installed topology must alter the run"
    );
}

#[test]
fn topology_runs_are_bit_identical_per_seed() {
    let scenario = Scenario::broadcast(512)
        .seed(11)
        .topology(Topology::WattsStrogatz(6, 0.2))
        .addressing(DirectAddressing::Restricted);
    for algo in registry::all() {
        let a = algo.run(&scenario);
        let b = algo.run(&scenario);
        assert_eq!(a, b, "{} diverged under a topology", algo.name());
    }
}

#[test]
fn one_scenario_means_one_graph_for_every_algorithm() {
    // The graph builds from the run seed under one shared stream label,
    // so every algorithm facing the same scenario faces the same graph
    // — observable through the metrics' shape fields.
    let common = CommonConfig {
        seed: 21,
        topology: expander(),
        ..CommonConfig::default()
    };
    let cluster = ClusterSim::new(256, &common);
    let baseline = optimal_gossip::baselines::common::rumor_network(256, &common);
    let a = cluster.net.topology_adjacency().expect("installed");
    let b = baseline.topology_adjacency().expect("installed");
    assert_eq!(a, b, "ClusterSim and the baselines must share the graph");
    assert_eq!(cluster.net.metrics().topology_edges, 256 * 8 / 2);
    assert_eq!(cluster.net.metrics().topology_max_degree, 8);

    // ...and a different seed means a different graph.
    let other = ClusterSim::new(256, &common.clone().with_seed(22));
    assert_ne!(a, other.net.topology_adjacency().expect("installed"));
}

#[test]
fn parallel_runner_is_thread_count_invariant_under_topology() {
    // Mirrors tests/parallel_equivalence.rs with a topology installed:
    // per-trial graphs derive from the trial seed, so the fan-out must
    // stay bit-identical at every thread count.
    let scenario = Scenario::broadcast(256)
        .topology(expander())
        .addressing(DirectAddressing::Restricted);
    let trials = 9; // deliberately not divisible by 2, 4, or 7
    for name in ["Cluster2", "ClusterPushPull", "Karp", "Push"] {
        let algo = registry::by_name(name).unwrap();
        let seq = run_trials_seq(0xE11, name, trials, |seed| {
            algo.run(&scenario.clone().seed(seed)).informed as f64
        });
        for threads in [1usize, 2, 4, 7] {
            let par = run_trials_on(threads, 0xE11, name, trials, |seed| {
                algo.run(&scenario.clone().seed(seed)).informed as f64
            });
            assert_eq!(par, seq, "{name} diverged at {threads} threads");
        }
    }
}

#[test]
fn random_contacts_are_confined_to_edges() {
    // Every traced communication of a pure Random workload must travel
    // along a graph edge.
    let mut net: Network<u32> = Network::new(64, 5);
    net.set_topology(expander(), DirectAddressing::Overlay, 99);
    net.enable_trace(10_000);
    let adj = net.topology_adjacency().expect("installed").clone();
    for _ in 0..20 {
        net.round(
            |ctx, _rng| {
                if ctx.idx.0 % 2 == 0 {
                    Action::Push {
                        to: Target::Random,
                        msg: 1u64,
                    }
                } else {
                    Action::<u64>::Pull { to: Target::Random }
                }
            },
            |s| Some(u64::from(*s)),
            |s, _d| *s += 1,
        );
    }
    let events = net.trace().events();
    assert!(!events.is_empty());
    for e in events {
        assert!(
            adj.contains_edge(e.from.0, e.to.0),
            "round {}: {:?} from {} to {} crossed a non-edge",
            e.round,
            e.kind,
            e.from,
            e.to
        );
    }
}

#[test]
fn restricted_addressing_gates_direct_calls_and_overlay_does_not() {
    let run = |mode: DirectAddressing| {
        let mut net: Network<u32> = Network::new(16, 3);
        net.set_topology(Topology::Ring, mode, 4);
        // Node 0 pushes directly to its antipode — never a ring neighbor.
        let far = net.id_of(NodeIdx(8));
        net.round(
            |ctx, _rng| {
                if ctx.idx.0 == 0 {
                    Action::Push {
                        to: Target::Direct(far),
                        msg: 1u64,
                    }
                } else {
                    Action::<u64>::Idle
                }
            },
            |_s| None,
            |s, d| {
                if matches!(d, Delivery::Push { .. }) {
                    *s += 1;
                }
            },
        );
        let stats = net.metrics().per_round[0];
        (net.states()[8], stats.initiators, stats.messages)
    };
    let (delivered, initiators, messages) = run(DirectAddressing::Overlay);
    assert_eq!(delivered, 1, "overlay: learned IDs cross the graph");
    assert_eq!((initiators, messages), (1, 1));
    let (delivered, initiators, messages) = run(DirectAddressing::Restricted);
    assert_eq!(delivered, 0, "restricted: no link, no delivery");
    assert_eq!(initiators, 1, "the attempt is still an initiation");
    assert_eq!(messages, 0, "lost in the void, like an unknown address");
}

#[test]
fn churned_neighbors_leave_the_contact_distribution_and_recoveries_reenter() {
    // A ring under a bounded full-crash outage with recovery: while a
    // node is down it must receive nothing (dead neighbors leave the
    // sampling distribution — the engine never even targets them), and
    // after recovering it must receive traffic again.
    let mut net: Network<u32> = Network::new(8, 17);
    net.set_topology(Topology::Ring, DirectAddressing::Overlay, 31);
    net.enable_trace(100_000);
    net.set_churn(
        ChurnConfig {
            crash_rate: 1.0,
            batch_size: 3,
            recovery_rate: 0.5,
            start_round: 5,
            stop_round: Some(6),
            ..ChurnConfig::default()
        },
        77,
    );
    let mut alive_history: Vec<Vec<bool>> = Vec::new();
    for _ in 0..60 {
        net.round(
            |_ctx, _rng| Action::Push {
                to: Target::Random,
                msg: 1u64,
            },
            |_s| None,
            |s, d| {
                if matches!(d, Delivery::Push { .. }) {
                    *s += 1;
                }
            },
        );
        alive_history.push((0..8).map(|i| net.is_alive(NodeIdx(i))).collect());
    }
    assert_eq!(net.metrics().crashes, 3, "the outage fired");
    assert_eq!(net.metrics().recoveries, 3, "and drained");
    // No traced event ever targets a node that was dead that round.
    for e in net.trace().events() {
        assert!(
            alive_history[e.round as usize][e.to.0 as usize],
            "round {}: dead node {} was sampled",
            e.round, e.to
        );
        assert_eq!(e.kind, EventKind::Push);
    }
    // Every recovered node receives traffic again after the outage.
    let crashed: Vec<u32> = (0..8u32)
        .filter(|&i| !alive_history[5][i as usize])
        .collect();
    assert_eq!(crashed.len(), 3);
    for &i in &crashed {
        let back_in = net
            .trace()
            .events()
            .iter()
            .any(|e| e.to.0 == i && alive_history[e.round as usize][i as usize]);
        assert!(back_in, "recovered node {i} re-entered the distribution");
    }
}

#[test]
fn all_neighbors_down_means_the_node_sits_out() {
    // Node 0's only ring neighbors (1 and 3 on a 4-ring) are dead: its
    // Random pushes resolve to nobody, but the attempts are charged.
    let mut net: Network<u32> = Network::new(4, 9);
    net.set_topology(Topology::Ring, DirectAddressing::Overlay, 2);
    net.apply_failures(&FailurePlan::explicit(vec![NodeIdx(1), NodeIdx(3)]));
    let stats = net.round(
        |ctx, _rng| {
            if ctx.idx.0 == 0 {
                Action::Push {
                    to: Target::Random,
                    msg: 1u64,
                }
            } else {
                Action::<u64>::Idle
            }
        },
        |_s| None,
        |s, _d| *s += 1,
    );
    assert_eq!(stats.initiators, 1, "the attempt is an initiation");
    assert_eq!(stats.messages, 0, "but no message could be placed");
    assert_eq!(net.states().iter().sum::<u32>(), 0);
}

#[test]
fn churn_schedule_is_identical_with_and_without_topology() {
    // The adversary draws from its own stream; installing a topology
    // must not shift a single churn event.
    let history = |with_topo: bool| {
        let mut net: Network<u32> = Network::new(128, 33);
        if with_topo {
            net.set_topology(expander(), DirectAddressing::Restricted, 8);
        }
        net.set_churn(
            ChurnConfig {
                crash_rate: 0.5,
                batch_size: 4,
                recovery_rate: 0.25,
                ..ChurnConfig::default()
            },
            55,
        );
        let mut hist: Vec<ChurnRound> = Vec::new();
        for _ in 0..30 {
            net.round(
                |_ctx, _rng| Action::Push {
                    to: Target::Random,
                    msg: 1u64,
                },
                |_s| None,
                |s, _d| *s += 1,
            );
            let m = net.metrics();
            hist.push(ChurnRound {
                crashed: m.crashes as u32,
                recovered: m.recoveries as u32,
                bursting: false,
            });
        }
        hist
    };
    assert_eq!(history(false), history(true));
}

#[test]
fn lowerbound_graph_runs_as_a_topology() {
    // The Graph -> Topology::FromAdjacency bridge end to end: run the
    // headline algorithm on a Theorem 15 sample-union graph.
    let g = optimal_gossip::lowerbound::graph::sample_union_graph(256, 4, 9);
    let scenario = Scenario::broadcast(256).seed(3).topology(g.to_topology());
    let r = registry::by_name("push-pull").unwrap().run(&scenario);
    assert!(r.rounds > 0 && r.informed > 1);
}

#[test]
#[should_panic(expected = "\"p\" wants a probability")]
fn scenario_topology_builder_validates_at_the_builder() {
    let _ = Scenario::broadcast(16).topology(Topology::ErdosRenyi(2.0));
}

#[test]
fn topology_params_travel_through_scenario_json() {
    // The full environment — topology and addressing included — round-
    // trips through the JSON codec, so a topology scenario can be stored
    // in a perf record and replayed exactly.
    let mut common = CommonConfig::default();
    common.topology = Topology::PreferentialAttachment(3);
    common.addressing = DirectAddressing::Restricted;
    let doc = common.params();
    let reparsed = Value::parse(&doc.render()).unwrap();
    let mut rebuilt = CommonConfig::default();
    rebuilt.apply_params(&reparsed).unwrap();
    assert_eq!(rebuilt, common);
}
