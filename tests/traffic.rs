//! Integration contract of the multi-rumor workload
//! (`phonecall::traffic`) across the whole stack: scenario-level
//! determinism, inertness of the default config, schedule-sharing
//! across algorithms, composition with churn and topologies, and the
//! JSON param hook.
//!
//! The canonical traffic scenario of `tests/golden_reports.rs` pins
//! exact digests; this suite pins the *properties* those digests rely
//! on.

use optimal_gossip::prelude::*;

/// The canonical E13-style workload: eight rumors at one arrival per
/// round, unlimited bandwidth.
fn loaded(n: usize) -> Scenario {
    Scenario::broadcast(n).rumors(8, 1.0)
}

#[test]
fn loaded_runs_are_bit_identical_per_seed() {
    let scenario = loaded(256).seed(11);
    for algo in registry::all() {
        let a = algo.run(&scenario);
        let b = algo.run(&scenario);
        assert_eq!(a, b, "{} diverged under workload", algo.name());
    }
}

#[test]
fn inert_traffic_leaves_runs_bit_identical() {
    // The default (inert) config installs nothing: attaching it must
    // not perturb a single digest — this is what keeps every
    // pre-workload golden row valid.
    let quiet = Scenario::broadcast(256).seed(7);
    let attached = Scenario::broadcast(256)
        .seed(7)
        .bandwidth(3) // a budget with no rumors budgets nothing
        .rumor_bits(CommonConfig::default().rumor_bits);
    for algo in registry::all() {
        assert_eq!(
            algo.run(&quiet),
            algo.run(&attached),
            "{} perturbed by an inert workload",
            algo.name()
        );
    }
}

#[test]
fn workload_actually_rides_the_messages() {
    // Guard against a silently detached workload: rumors must transfer,
    // bits must grow by exactly the piggybacked payloads, and the
    // message count must not move (payloads widen messages, they never
    // add any).
    let algo = registry::by_name("cluster2").unwrap();
    let quiet = algo.run(&Scenario::broadcast(256).seed(11));
    let r = algo.run(&loaded(256).seed(11));
    assert_eq!(r.rumors.len(), 8, "all eight rumors are reported");
    assert!(r.rumor_payloads > 0, "the workload must have transferred");
    assert_eq!(r.messages, quiet.messages, "piggybacking adds no messages");
    assert_eq!(
        r.bits,
        quiet.bits + r.rumor_payloads * CommonConfig::default().rumor_bits,
        "bits grow by exactly the piggybacked payloads"
    );
}

#[test]
fn one_scenario_means_one_arrival_plan_for_every_algorithm() {
    // The workload stream is seed-derived (label 6), independent of the
    // algorithm: every algorithm must face the same (origin, round)
    // arrival plan.
    let scenario = loaded(256).seed(3);
    let reference: Vec<(u32, u64)> = registry::by_name("push")
        .unwrap()
        .run(&scenario)
        .rumors
        .iter()
        .map(|s| (s.origin, s.arrival))
        .collect();
    assert_eq!(reference.len(), 8);
    for algo in registry::all() {
        let got: Vec<(u32, u64)> = algo
            .run(&scenario)
            .rumors
            .iter()
            .map(|s| (s.origin, s.arrival))
            .collect();
        assert_eq!(got, reference, "{} saw a different plan", algo.name());
    }
}

#[test]
fn workload_composes_with_churn_and_topology() {
    // The full E13 stack: workload + dynamic adversary + restricted
    // topology in one run, bit-deterministic and still reporting.
    let churn = ChurnConfig {
        crash_rate: 0.5,
        batch_size: 4,
        recovery_rate: 0.2,
        start_round: 1,
        stop_round: Some(20),
        protected: vec![0],
        ..ChurnConfig::default()
    };
    let scenario = loaded(256)
        .seed(5)
        .churn(churn)
        .topology(Topology::RandomRegular(8))
        .addressing(DirectAddressing::Overlay);
    let algo = registry::by_name("clusterpushpull").unwrap();
    let a = algo.run(&scenario);
    assert_eq!(a, algo.run(&scenario), "loaded+churned run must be exact");
    assert!(a.rumor_payloads > 0, "workload rode the constrained run");
}

#[test]
fn bandwidth_budget_throttles_but_counts() {
    let algo = registry::by_name("cluster1").unwrap();
    let free = algo.run(&loaded(256).seed(9));
    let choked = algo.run(&loaded(256).seed(9).bandwidth(1));
    assert!(choked.budget_drops > 0, "a budget of 1 must drop transfers");
    assert!(
        choked.rumor_payloads < free.rumor_payloads,
        "the budget must actually throttle"
    );
    assert_eq!(free.budget_drops, 0, "unlimited budget drops nothing");
}

#[test]
fn traffic_params_travel_through_scenario_json() {
    // The full environment — workload included — round-trips through
    // the JSON codec, so a loaded scenario can be stored in a perf
    // record and replayed exactly.
    let mut common = CommonConfig::default();
    common.traffic = TrafficConfig {
        rumors: 8,
        arrival_rate: 1.5,
        bandwidth: 2,
        start_round: 3,
    };
    let doc = common.params();
    let reparsed = Value::parse(&doc.render()).unwrap();
    let mut rebuilt = CommonConfig::default();
    rebuilt.apply_params(&reparsed).unwrap();
    assert_eq!(rebuilt, common);

    // A bad knob names itself on the way in.
    let bad = Value::parse(r#"{"traffic": {"rumors": 4, "arrival_rate": -1}}"#).unwrap();
    let err = CommonConfig::default().apply_params(&bad).unwrap_err();
    assert!(
        format!("{err}").contains("\"arrival_rate\""),
        "error names the knob: {err}"
    );
}
