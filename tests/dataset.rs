//! Integration contract of the dataset subsystem
//! (`phonecall::dataset`) across the whole stack: hermeticity of the
//! committed fixtures (bytes regenerate from seeds), the HyperBall
//! estimator against the certified exact BFS diameter — on every
//! committed fixture and property-tested across random connected
//! graphs — the binary cache's round-trip / corruption / staleness
//! behavior through the public `load` path, ingestion edge cases, and
//! cold-vs-warm run equality for file-loaded topologies.
//!
//! The `DATASET_GOLDEN` table of `tests/golden_reports.rs` pins exact
//! digests on the `ws_1k` snapshot; this suite pins the *properties*
//! those digests rely on.

use std::fs;
use std::path::{Path, PathBuf};

use optimal_gossip::lowerbound::diameter;
use optimal_gossip::lowerbound::graph::Graph;
use optimal_gossip::prelude::*;
use phonecall::dataset::{self, fixture, hyperball, parse_edge_list};
use proptest::prelude::*;

/// The committed fixture directory, resolved from the package root so
/// tests pass regardless of the runner's working directory.
fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

/// A scratch directory unique to this test, so cache-mutation tests
/// never race the committed fixtures (or each other).
fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gossip-dataset-test-{}-{name}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn committed_fixtures_regenerate_byte_identically() {
    // The hermetic-CI contract: `gen_fixtures` into a scratch dir must
    // reproduce the committed bytes exactly. Checked here too, so a
    // drifted tree fails `cargo test` before it fails CI.
    for f in fixture::catalog() {
        let committed = data_dir().join(f.file_name);
        let committed = fs::read_to_string(&committed)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", f.file_name));
        assert_eq!(
            fixture::render(f),
            committed,
            "{} drifted from its seed; regenerate with gen_fixtures",
            f.name
        );
    }
}

#[test]
fn hyperball_matches_exact_bfs_on_every_fixture() {
    // The acceptance bar: within ±1 of the certified diameter on every
    // committed snapshot, at the estimator's own (default) register
    // sizing and the experiment's seed.
    for f in fixture::catalog() {
        let adj = dataset::load(data_dir().join(f.file_name)).unwrap();
        let exact = diameter::exact(&Graph::from_adjacency(&adj))
            .unwrap_or_else(|| panic!("{} must be connected", f.name));
        let est = hyperball::estimate(&adj, 0xE12);
        assert!(
            est.diameter <= exact && est.diameter + 1 >= exact,
            "{}: HyperBall said {} against exact {exact}",
            f.name,
            est.diameter
        );
        assert!(
            est.effective_diameter <= f64::from(est.diameter),
            "{}: effective diameter cannot exceed the saturation round",
            f.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// HyperBall lands within 1 of the exact BFS diameter on every
    /// connected random graph up to 2^10 nodes, across four families
    /// spanning the diameter spectrum (constant to n/2). Registers are
    /// sized to at least 2 per node — the regime the module's ±1 claim
    /// is stated for.
    #[test]
    fn hyperball_is_within_one_of_exact_bfs(
        family in 0u8..4,
        n in 8usize..=1024,
        seed in 0u64..1000,
    ) {
        let topo = match family {
            0 => Topology::Ring,
            1 => Topology::Torus2D,
            2 => Topology::WattsStrogatz(4, 0.2),
            _ => Topology::PreferentialAttachment(3),
        };
        let adj = topo.build(n, seed).expect("materialized family");
        let exact = diameter::exact(&Graph::from_adjacency(&adj))
            .expect("these families are connected by construction");
        let p = (2 * n).next_power_of_two().trailing_zeros().clamp(6, 12);
        let est = hyperball::estimate_with_registers(&adj, seed ^ 0x5eed, p);
        prop_assert!(
            est.diameter <= exact && est.diameter + 1 >= exact,
            "{topo:?} n={n} seed={seed}: HyperBall {} vs exact {exact}",
            est.diameter
        );
    }
}

#[test]
fn cache_survives_round_trip_corruption_and_staleness() {
    let dir = scratch_dir("cache");
    let src = dir.join("g.txt");
    // A 5-ring with noise the parser must absorb: comments, CRLF, a
    // duplicate line, a self-loop line, sparse non-contiguous ids.
    fs::write(
        &src,
        "# five nodes, ring\r\n70 9\r\n9 300\n300 4\t\n4 15\n15 70\n9 70\n300 300\n",
    )
    .unwrap();
    let cpath = dataset::cache_path(&src);
    assert!(!cpath.exists(), "no cache before the first load");

    let cold = dataset::load(&src).unwrap();
    assert_eq!(cold.len(), 5);
    assert_eq!(cold.edge_count(), 5);
    assert!(cpath.exists(), "first load writes the cache");

    let warm = dataset::load(&src).unwrap();
    assert_eq!(cold, warm, "warm load returns the identical CSR");

    // Corrupt the cache: load falls back to the text source (with a
    // stderr warning) and heals the cache file.
    let good_bytes = fs::read(&cpath).unwrap();
    let mut bad = good_bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    fs::write(&cpath, &bad).unwrap();
    let healed = dataset::load(&src).unwrap();
    assert_eq!(cold, healed, "corrupt cache falls back to the text");
    assert_eq!(
        fs::read(&cpath).unwrap(),
        good_bytes,
        "fallback rewrites a good cache"
    );

    // Change the source (different length, so the stamp moves even
    // within mtime granularity): the stale cache must not shadow it.
    fs::write(&src, "1 2\n2 3\n").unwrap();
    let fresh = dataset::load(&src).unwrap();
    assert_eq!(fresh.len(), 3);
    assert_eq!(fresh.edge_count(), 2);
}

#[test]
fn load_errors_name_the_offending_file() {
    let dir = scratch_dir("errors");
    let missing = dir.join("nope.txt");
    let err = dataset::load(&missing).unwrap_err();
    assert!(err.contains("nope.txt"), "{err}");

    let garbage = dir.join("garbage.txt");
    fs::write(&garbage, "hello world\n").unwrap();
    let err = dataset::load(&garbage).unwrap_err();
    assert!(err.contains("garbage.txt"), "{err}");
    assert!(err.contains("not an unsigned integer"), "{err}");

    let empty = dir.join("empty.txt");
    fs::write(&empty, "# nothing here\n\n").unwrap();
    let err = dataset::load(&empty).unwrap_err();
    assert!(err.contains("no edges found"), "{err}");
}

#[test]
fn ingestion_is_separator_and_order_insensitive() {
    // The same graph through three surface forms: canonical, CRLF with
    // tabs and extra columns, shuffled with duplicates and self-loops.
    let canonical = parse_edge_list("10 20\n20 30\n30 10\n").unwrap();
    let noisy = parse_edge_list("# c\r\n10\t20\t99\r\n20\t30\r\n30\t10\r\n").unwrap();
    let shuffled = parse_edge_list("30 10\n20 20\n20 30\n10 20\n20 10\n").unwrap();
    // First-appearance relabeling makes canonical and noisy identical;
    // shuffled permutes labels, so compare its shape instead.
    assert_eq!(canonical, noisy);
    assert_eq!(shuffled.len(), 3);
    assert_eq!(shuffled.edge_count(), 3);
    assert_eq!(canonical.edge_count(), 3);
}

#[test]
fn file_topology_runs_cold_and_warm_identically() {
    // A FromFile scenario must not care whether its graph arrives via
    // the text parser (cold) or the binary cache (warm): same digest.
    let dir = scratch_dir("coldwarm");
    let src = dir.join("ws.txt");
    fs::write(&src, fixture::render(&fixture::catalog()[1])).unwrap();
    let spec = src.to_string_lossy().into_owned();
    let scenario = Scenario::broadcast(1024)
        .seed(3)
        .topology(Topology::FromFile(spec))
        .addressing(DirectAddressing::Overlay);
    let push_pull = registry::by_name("PushPull").unwrap();
    assert!(!dataset::cache_path(&src).exists());
    let cold = push_pull.run(&scenario);
    assert!(
        dataset::cache_path(&src).exists(),
        "the run's graph build populated the cache"
    );
    let warm = push_pull.run(&scenario);
    assert_eq!(
        (cold.rounds, cold.messages, cold.bits, cold.informed),
        (warm.rounds, warm.messages, warm.bits, warm.informed),
        "cold and warm runs must be bit-identical"
    );
}

#[test]
fn file_topology_round_trips_through_config_json() {
    // The full environment round-trip for a file-loaded topology: the
    // path must survive serialization verbatim (it is a filesystem
    // string, not a catalog key — no case folding, no normalization).
    let spec = data_dir().join("ws_1k.txt").to_string_lossy().into_owned();
    let mut common = CommonConfig::default();
    common.topology = Topology::FromFile(spec.clone());
    common.addressing = DirectAddressing::Restricted;
    let doc = common.params();
    let reparsed = Value::parse(&doc.render()).unwrap();
    let mut rebuilt = CommonConfig::default();
    rebuilt.apply_params(&reparsed).unwrap();
    assert_eq!(rebuilt, common);
    assert_eq!(rebuilt.topology, Topology::FromFile(spec));
}
