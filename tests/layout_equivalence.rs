//! Layout-equivalence at the report level: the PR-6 struct-of-arrays
//! engine (packed bitset flags, u32 id plumbing, arena-backed node
//! scratch, batched contact resolution) must be *behaviorally invisible*.
//!
//! The golden tables in `golden_reports.rs` pin fixed grid points; this
//! file covers the space *between* them. A proptest draws random
//! `(n, seed, churn, topology, addressing)` corners and asserts two runs
//! produce **bit-identical** `RunReport`s — any hidden state in the
//! shared arena, scratch columns or bitsets that leaks across runs, and
//! any draw-order drift that depends on layout, fails here on corners no
//! pinned table thought to cover. A second test re-proves the
//! thread-count invariance contract at `n = 2^17`, where the bitset
//! word count and arena chunk count are large enough that a
//! false-sharing or reuse bug would actually bite.

use optimal_gossip::prelude::*;
use proptest::prelude::*;

use gossip_harness::{run_trials_on, run_trials_seq};

/// Decodes a drawn corner into a scenario. The topology/churn axes are
/// small enums on purpose: each variant exercises a different engine
/// path (complete = flat sampling, ring/random-regular = CSR neighbor
/// scans, churn = adversary bitsets + recovery resets).
fn corner(n: usize, seed: u64, knobs: u32) -> Scenario {
    let mut s = Scenario::broadcast(n).seed(seed);
    match knobs % 4 {
        1 => s = s.topology(Topology::Ring),
        2 if n > 8 => s = s.topology(Topology::RandomRegular(8)),
        3 => s = s.topology(Topology::ErdosRenyi(0.05)),
        _ => {}
    }
    if knobs & 4 != 0 {
        s = s.addressing(DirectAddressing::Restricted);
    }
    if knobs & 8 != 0 {
        s = s.churn(ChurnConfig {
            crash_rate: 0.5,
            batch_size: (n / 32).max(2) as u32,
            recovery_rate: 0.3,
            burst_enter: 0.1,
            burst_exit: 0.4,
            burst_loss: 0.5,
            protected: vec![0],
            ..ChurnConfig::default()
        });
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Two runs of the same drawn corner are bit-identical — across the
    /// clustered algorithm (arena-heavy path) and the engine baseline
    /// (bitset/scratch path), under every knob combination the draw
    /// lands on.
    #[test]
    fn reports_are_bit_identical_on_random_corners(
        n in 64usize..=1200,
        seed in 0u64..=10_000,
        knobs in 0u32..16,
    ) {
        for name in ["Cluster2", "PushPull"] {
            let algo = registry::by_name(name).expect("registry default");
            let scenario = corner(n, seed, knobs);
            let a = algo.run(&scenario);
            let b = algo.run(&scenario);
            prop_assert_eq!(&a, &b, "{} diverged at n={} seed={} knobs={}", name, n, seed, knobs);
            prop_assert!(a.alive > 0 && a.rounds > 0, "degenerate corner");
        }
    }
}

/// The runner's thread-count invariance, at a size where the packed
/// columns are real (2^17 bits = 2 KiB of alive words per network, a
/// multi-chunk arena per trial): summaries at 1/2/4/7 worker threads are
/// bit-identical to the sequential runner, on a float-sensitive metric.
#[test]
fn thread_counts_agree_at_2_pow_17() {
    let n = 1 << 17;
    let algo = registry::by_name("PushPull").expect("registry default");
    let trials = 3; // not divisible by 2, 4, or 7
    let metric = |seed: u64| {
        algo.run(&Scenario::broadcast(n).seed(seed))
            .messages_per_node()
    };
    let seq = run_trials_seq(0x17, "PushPull@2^17", trials, metric);
    assert!(seq.mean > 0.0);
    for threads in [1usize, 2, 4, 7] {
        let par = run_trials_on(threads, 0x17, "PushPull@2^17", trials, metric);
        assert_eq!(par, seq, "summary diverged at {threads} threads");
    }
}
