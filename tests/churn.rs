//! Integration contract of the dynamic adversary (`phonecall::churn`)
//! across the whole stack: scenario-level determinism, thread-count
//! invariance of the parallel runner under an active schedule, builder
//! validation, and schedule-sharing across algorithms.
//!
//! The canonical churn scenario of `tests/golden_reports.rs` pins exact
//! digests; this suite pins the *properties* those digests rely on.

use optimal_gossip::prelude::*;

use gossip_harness::{run_trials_on, run_trials_seq};

/// An aggressive schedule exercising every axis at once: correlated
/// crash batches, recoveries, and burst loss.
fn stormy() -> ChurnConfig {
    ChurnConfig {
        crash_rate: 0.6,
        batch_size: 8,
        recovery_rate: 0.2,
        burst_enter: 0.2,
        burst_exit: 0.4,
        burst_loss: 0.5,
        start_round: 1,
        stop_round: Some(40),
        protected: vec![0],
        ..ChurnConfig::default()
    }
}

#[test]
fn churned_runs_are_bit_identical_per_seed() {
    let scenario = Scenario::broadcast(512).seed(11).churn(stormy());
    for algo in registry::all() {
        let a = algo.run(&scenario);
        let b = algo.run(&scenario);
        assert_eq!(a, b, "{} diverged under churn", algo.name());
    }
}

#[test]
fn churn_actually_perturbs_runs() {
    // Guard against a silently detached adversary: an active schedule
    // must change traffic relative to the quiet scenario.
    let quiet = Scenario::broadcast(512).seed(11);
    let churned = Scenario::broadcast(512).seed(11).churn(stormy());
    let algo = registry::by_name("cluster2").unwrap();
    assert_ne!(
        algo.run(&quiet).messages,
        algo.run(&churned).messages,
        "an active schedule must alter the run"
    );
}

#[test]
fn inert_churn_leaves_runs_bit_identical() {
    // The default (inert) config schedules nothing: attaching it must
    // not perturb a single digest — this is what keeps every pre-churn
    // golden row valid.
    let quiet = Scenario::broadcast(256).seed(7);
    let attached = Scenario::broadcast(256)
        .seed(7)
        .churn(ChurnConfig::default());
    for algo in registry::all() {
        assert_eq!(
            algo.run(&quiet),
            algo.run(&attached),
            "{} perturbed by an inert schedule",
            algo.name()
        );
    }
}

#[test]
fn parallel_runner_is_thread_count_invariant_under_churn() {
    // Mirrors tests/parallel_equivalence.rs with an active adversary:
    // per-trial schedules derive from the trial seed, so the fan-out
    // must stay bit-identical at every thread count.
    let scenario = Scenario::broadcast(256).churn(stormy());
    let trials = 9; // deliberately not divisible by 2, 4, or 7
    for name in ["Cluster2", "ClusterPushPull", "Karp", "Push"] {
        let algo = registry::by_name(name).unwrap();
        let seq = run_trials_seq(0xE10, name, trials, |seed| {
            algo.run(&scenario.clone().seed(seed)).informed as f64
        });
        for threads in [1usize, 2, 4, 7] {
            let par = run_trials_on(threads, 0xE10, name, trials, |seed| {
                algo.run(&scenario.clone().seed(seed)).informed as f64
            });
            assert_eq!(par, seq, "{name} diverged at {threads} threads");
        }
    }
}

#[test]
fn adversary_is_oblivious_to_the_algorithm() {
    // The schedule draws from its own seed-derived stream, never from
    // the engine RNG or node state — so two networks with the same
    // (seed, churn) running *different* algorithms face bit-identical
    // crash/recovery/burst histories over the same number of rounds.
    use phonecall::{Action, Target};

    let history = |pushy: bool| {
        let mut net: Network<u32> = Network::new(256, 21);
        net.set_churn(stormy(), phonecall::derive_seed(21, 4));
        for _ in 0..30 {
            net.round(
                move |_ctx, _rng| {
                    if pushy {
                        Action::Push {
                            to: Target::Random,
                            msg: 1u64,
                        }
                    } else {
                        Action::<u64>::Idle
                    }
                },
                |_s| None,
                |s, _d| *s += 1,
            );
        }
        let m = net.metrics();
        (m.crashes, m.recoveries, m.burst_rounds)
    };
    let busy = history(true);
    assert_eq!(busy, history(false), "traffic must not steer the adversary");
    assert!(busy.0 > 0, "the schedule really fired");
}

#[test]
fn recovered_nodes_finish_informed_under_drained_churn() {
    // A bounded outage with recovery that drains before the schedules
    // end: every survivor — including every recovered node — must be
    // swept back in by the observer-stopped baselines.
    let churn = ChurnConfig {
        crash_rate: 1.0,
        batch_size: 16,
        recovery_rate: 0.4,
        start_round: 1,
        stop_round: Some(6),
        protected: vec![0],
        ..ChurnConfig::default()
    };
    let scenario = Scenario::broadcast(512).seed(5).churn(churn);
    for name in ["Push", "Pull", "PushPull"] {
        let algo = registry::by_name(name).unwrap();
        let r = algo.run(&scenario);
        // The observer keeps the loop alive until every survivor —
        // recovered nodes included — is informed; nodes still crashed
        // when it exits stay out of the denominator (at most the 5
        // batches of 16 the window fired).
        assert!(r.alive >= 512 - 80, "{name}: alive {}", r.alive);
        assert!(r.informed > 432, "{name}: spread happened ({})", r.informed);
        assert!(
            r.success,
            "{name}: recovered nodes must be re-informed, got {}/{}",
            r.informed, r.alive
        );
    }
}

#[test]
#[should_panic(expected = "\"burst_loss\" wants a probability")]
fn scenario_churn_builder_validates_at_the_builder() {
    let _ = Scenario::broadcast(16).churn(ChurnConfig {
        burst_enter: 0.5,
        burst_loss: 17.0,
        ..ChurnConfig::default()
    });
}

#[test]
#[should_panic(expected = "\"message_loss\" wants a probability")]
fn scenario_loss_builder_validates_at_the_builder() {
    let _ = Scenario::broadcast(16).message_loss(-0.25);
}

#[test]
fn churn_params_travel_through_scenario_json() {
    // The full environment — churn included — round-trips through the
    // JSON codec, so a churn scenario can be stored in a perf record
    // and replayed exactly.
    let mut common = CommonConfig::default();
    common.churn = stormy();
    let doc = common.params();
    let reparsed = Value::parse(&doc.render()).unwrap();
    let mut rebuilt = CommonConfig::default();
    rebuilt.apply_params(&reparsed).unwrap();
    assert_eq!(rebuilt, common);
}
