//! The determinism contract, end-to-end: all randomness flows from the
//! run seed, so two runs with the same `(n, seed)` must produce
//! **bit-identical** `RunReport`s — not merely both-successful ones.
//! Sweeps, fits and the paper-claim assertions all lean on this.

use optimal_gossip::prelude::*;

fn c2(seed: u64) -> Cluster2Config {
    let mut cfg = Cluster2Config::default();
    cfg.common.seed = seed;
    cfg
}

#[test]
fn cluster2_reports_are_bit_identical() {
    for seed in [0u64, 1, 0xdead_beef] {
        for n in [64usize, 337, 1024] {
            let cfg = c2(seed);
            let a = cluster2::run(n, &cfg);
            let b = cluster2::run(n, &cfg);
            assert_eq!(a, b, "cluster2 n={n} seed={seed} diverged");
            assert!(a.success, "cluster2 n={n} seed={seed} failed");
        }
    }
}

#[test]
fn cluster2_reports_differ_across_seeds() {
    // Sanity check on the test itself: the equality above is not vacuous
    // (different seeds really do produce different traffic patterns).
    let a = cluster2::run(1024, &c2(11));
    let b = cluster2::run(1024, &c2(12));
    assert_ne!(
        (a.messages, a.bits),
        (b.messages, b.bits),
        "different seeds should not produce identical traffic"
    );
}

#[test]
fn cluster1_reports_are_bit_identical() {
    let mut cfg = Cluster1Config::default();
    cfg.common.seed = 7;
    let a = cluster1::run(512, &cfg);
    let b = cluster1::run(512, &cfg);
    assert_eq!(a, b);
}

#[test]
fn baselines_and_push_pull_are_bit_identical() {
    let mut common = CommonConfig::default();
    common.seed = 21;
    assert_eq!(push::run(256, &common), push::run(256, &common));
    assert_eq!(pull::run(256, &common), pull::run(256, &common));
    assert_eq!(karp::run(256, &common), karp::run(256, &common));

    let mut cfg = PushPullConfig::default();
    cfg.common.seed = 22;
    assert_eq!(
        cluster_push_pull::run(256, 16, &cfg),
        cluster_push_pull::run(256, 16, &cfg)
    );
}

#[test]
fn determinism_survives_failures_and_message_loss() {
    let mut cfg = c2(5);
    cfg.common.failures = FailurePlan::random(512, 64, 99);
    cfg.common.message_loss = 0.05;
    let a = cluster2::run(512, &cfg);
    let b = cluster2::run(512, &cfg);
    assert_eq!(a, b, "failure plans and loss coins must replay identically");
}
