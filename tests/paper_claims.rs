//! The paper's quantitative claims as executable assertions (the
//! lightweight twin of the EXPERIMENTS.md suite; the `exp_*` binaries
//! produce the full tables).

use optimal_gossip::core::config::{log2n, loglog2n};
use optimal_gossip::prelude::*;

fn c2(n: usize, seed: u64) -> RunReport {
    let mut cfg = Cluster2Config::default();
    cfg.common.seed = seed;
    cluster2::run(n, &cfg)
}

/// Theorem 2 (rounds): Cluster2's round count grows like log log n —
/// going from 2^9 to 2^15 (64x more nodes) must barely move it.
#[test]
fn theorem2_round_shape() {
    let small = c2(1 << 9, 1);
    let large = c2(1 << 15, 1);
    assert!(small.success && large.success);
    let ratio = large.rounds as f64 / small.rounds as f64;
    let loglog_ratio = loglog2n(1 << 15) / loglog2n(1 << 9);
    assert!(
        ratio <= loglog_ratio * 1.5,
        "rounds ratio {ratio} should track loglog ratio {loglog_ratio}"
    );
    // And it must be way below the log-n ratio 15/9 = 1.67 scaled PUSH shows.
    assert!(ratio < 1.45, "rounds ratio {ratio}");
}

/// Theorem 2 (messages): messages per node stay O(1) — flat or shrinking
/// in n, and far below PUSH's Θ(log n) at the same size.
#[test]
fn theorem2_message_shape() {
    let small = c2(1 << 10, 2);
    let large = c2(1 << 15, 2);
    assert!(large.messages_per_node() <= small.messages_per_node() * 1.3);
    let mut common = CommonConfig::default();
    common.seed = 2;
    let push_large = push::run(1 << 15, &common);
    // PUSH sends ~log n per node; Cluster2's constant should not exceed a
    // few times that at this size and will win at scale; what must hold
    // strictly is the growth comparison:
    let c2_growth = large.messages_per_node() / small.messages_per_node();
    let push_small = push::run(1 << 10, &common);
    let push_growth = push_large.messages_per_node() / push_small.messages_per_node();
    assert!(
        c2_growth < push_growth,
        "Cluster2 {c2_growth} vs push {push_growth}"
    );
}

/// Theorem 2 (bits): total bits are O(n·b) — with a large rumor the
/// per-node bit cost is a small multiple of b.
#[test]
fn theorem2_bit_shape() {
    let mut cfg = Cluster2Config::default();
    cfg.common.seed = 3;
    cfg.common.rumor_bits = 4096;
    let r = cluster2::run(1 << 12, &cfg);
    assert!(r.success);
    let per_node = r.bits_per_node() / cfg.common.rumor_bits as f64;
    assert!(per_node < 4.0, "bits/node should be O(b): {per_node} * b");
}

/// Theorem 3: below the threshold no algorithm can finish; above it the
/// obstruction vanishes.
#[test]
fn theorem3_threshold() {
    let n = 1 << 14;
    assert_eq!(estimate_success(n, 1, 6, 4), 0.0, "T=1 must always fail");
    assert_eq!(
        estimate_success(n, 2, 6, 4),
        0.0,
        "T=2 must always fail at n=2^14"
    );
    assert!(estimate_success(n, 6, 6, 4) > 0.99, "T=6 must succeed");
}

/// Theorem 9: Cluster1 informs everyone in O(log log n) rounds (shape).
#[test]
fn theorem9_cluster1_shape() {
    let mut cfg = Cluster1Config::default();
    cfg.common.seed = 5;
    let small = cluster1::run(1 << 9, &cfg);
    let large = cluster1::run(1 << 15, &cfg);
    assert!(small.success && large.success);
    assert!((large.rounds as f64) < small.rounds as f64 * 1.5);
}

/// Theorem 4/18: the delta-clustering respects the fan-in bound while
/// staying O(log log n) rounds.
#[test]
fn theorem18_delta_clustering() {
    let mut cfg = Cluster3Config::default();
    cfg.common.seed = 6;
    cfg.c2.common.seed = 6;
    let (_s_small, small) = cluster3::build(1 << 9, 32, &cfg);
    let (_s_large, large) = cluster3::build(1 << 15, 32, &cfg);
    assert!(small.complete && large.complete);
    assert!(small.max_fan_in <= 32 && large.max_fan_in <= 32);
    assert!(
        (large.rounds as f64) < small.rounds as f64 * 1.5,
        "O(log log n) rounds"
    );
}

/// Lemma 16/17: more fan-in, fewer rounds — the trade-off is monotone
/// and the loop length tracks log n / log delta.
#[test]
fn lemma16_tradeoff_monotone() {
    let n = 1 << 12;
    let loop_rounds = |delta: usize| {
        let mut cfg = PushPullConfig::default();
        cfg.common.seed = 7;
        let r = cluster_push_pull::run(n, delta, &cfg);
        assert!(r.success);
        r.phases
            .iter()
            .find(|p| p.name == "PushPullLoop")
            .map_or(0, |p| p.rounds)
    };
    let r16 = loop_rounds(16);
    let r256 = loop_rounds(256);
    assert!(r256 < r16, "delta=256 ({r256}) must beat delta=16 ({r16})");
    // Quantitative shape: ratio of loop lengths ~ ratio of 1/log(delta').
    let predicted = ((256.0f64 / 4.0).log2() / (16.0f64 / 4.0).log2()).recip();
    let measured = r256 as f64 / r16 as f64;
    assert!(
        (measured / predicted - 1.0).abs() < 0.8,
        "measured ratio {measured} vs predicted {predicted}"
    );
}

/// Theorem 19: with F oblivious failures, all but o(F) survivors learn
/// the rumor (here: at most 2% of F across the grid).
#[test]
fn theorem19_fault_tolerance() {
    for frac in [0.1f64, 0.3] {
        let n = 1 << 12;
        let f = (n as f64 * frac) as usize;
        let mut cfg = Cluster2Config::default();
        cfg.common.seed = 8;
        cfg.common.failures = FailurePlan::random(n, f, 99);
        if cfg.common.failures.failed().iter().any(|i| i.0 == 0) {
            cfg.common.source = (0..n as u32)
                .find(|i| !cfg.common.failures.failed().iter().any(|x| x.0 == *i))
                .unwrap();
        }
        let r = cluster2::run(n, &cfg);
        assert_eq!(r.alive, n - f);
        assert!(
            (r.uninformed() as f64) <= 0.02 * f as f64,
            "frac={frac}: {} uninformed of F={f}",
            r.uninformed()
        );
    }
}

/// The Avin–Elsässer reconstruction sits strictly between Cluster2 and
/// PUSH in round growth (sqrt(log n) between loglog n and log n).
#[test]
fn avin_elsasser_sits_between() {
    let mut common = CommonConfig::default();
    common.seed = 10;
    let growth = |f: &dyn Fn(usize) -> u64| f(1 << 15) as f64 / f(1 << 9) as f64;
    let ae = growth(&|n| avin_elsasser::run(n, &common).rounds);
    let push_g = growth(&|n| push::run(n, &common).rounds);
    assert!(
        ae < push_g,
        "AE round growth {ae} must be below push {push_g}"
    );
}

/// Karp et al.: rumor transmissions per node stay near-flat while plain
/// PUSH's grow with log n.
#[test]
fn karp_transmission_economy() {
    let mut common = CommonConfig::default();
    common.seed = 11;
    let karp_large = karp::run(1 << 15, &common);
    let push_large = push::run(1 << 15, &common);
    assert!(karp_large.success);
    assert!(
        karp_large.payload_messages_per_node() < push_large.payload_messages_per_node(),
        "karp {} vs push {}",
        karp_large.payload_messages_per_node(),
        push_large.payload_messages_per_node()
    );
    // The asymptotic separation (loglog vs log) shows in the growth rate:
    let karp_small = karp::run(1 << 9, &common);
    let push_small = push::run(1 << 9, &common);
    let karp_growth =
        karp_large.payload_messages_per_node() / karp_small.payload_messages_per_node();
    let push_growth =
        push_large.payload_messages_per_node() / push_small.payload_messages_per_node();
    assert!(
        karp_growth < push_growth,
        "karp growth {karp_growth} must be below push growth {push_growth}"
    );
}

/// Section 3.2 footnote: with the size-controlled Cluster2, every single
/// message stays at O(log n + b) bits — no resize announcement ever
/// carries more than O(1) IDs.
#[test]
fn cluster2_message_sizes_stay_logarithmic() {
    let mut cfg = Cluster2Config::default();
    cfg.common.seed = 13;
    cfg.common.rumor_bits = 256;
    for n in [1usize << 10, 1 << 14] {
        let r = cluster2::run(n, &cfg);
        assert!(r.success);
        let l = log2n(n);
        // Envelope: header (4 log n) + payload ≤ rumor + a handful of IDs.
        let envelope = 4.0 * l + 256.0 + 24.0 * (2.0 * l) + 32.0;
        assert!(
            (r.max_message_bits as f64) <= envelope,
            "n={n}: max message {} bits exceeds O(log n + b) envelope {envelope}",
            r.max_message_bits
        );
    }
}

/// The other half of the Section 3.2 footnote: Cluster1 performs
/// ClusterResize on clusters far larger than the target (its first
/// resize splits Θ(log n)-factor oversized clusters), so its largest
/// message carries ω(1) IDs — strictly larger than Cluster2's, whose
/// continuous size control keeps the ratio s'/s at Θ(1).
#[test]
fn cluster1_resize_messages_exceed_cluster2s() {
    let n = 1 << 14;
    let mut c1 = Cluster1Config::default();
    c1.common.seed = 14;
    c1.common.rumor_bits = 64; // small rumor so control messages dominate
    let r1 = cluster1::run(n, &c1);
    let mut c2 = Cluster2Config::default();
    c2.common.seed = 14;
    c2.common.rumor_bits = 64;
    let r2 = cluster2::run(n, &c2);
    assert!(r1.success && r2.success);
    assert!(
        r1.max_message_bits > 2 * r2.max_message_bits,
        "Cluster1 max msg {} bits should dwarf Cluster2's {}",
        r1.max_message_bits,
        r2.max_message_bits
    );
}

/// Sanity anchor for the baselines: PUSH rounds ≈ log2 n + ln n.
#[test]
fn push_matches_pittel_constant() {
    let mut common = CommonConfig::default();
    common.seed = 12;
    let n = 1 << 14;
    let r = push::run(n, &common);
    let predicted = log2n(n) + (n as f64).ln();
    assert!(
        (r.rounds as f64) < predicted * 1.3 && (r.rounds as f64) > predicted * 0.7,
        "push rounds {} vs Pittel {predicted:.1}",
        r.rounds
    );
}
